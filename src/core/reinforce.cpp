#include "core/reinforce.hpp"

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/checked_file.hpp"
#include "util/parallel_for.hpp"

namespace giph {
namespace {

/// splitmix64 finalizer. mt19937_64 seeded with adjacent integers can emit
/// correlated early outputs across episodes; mixing (seed + episode) through
/// a bijective avalanche first decorrelates the streams while keeping the
/// per-episode seed a pure function of (seed, episode).
std::uint64_t mix_seed(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void write_doubles(std::ostream& out, const std::vector<double>& xs) {
  out << xs.size();
  for (double x : xs) out << " " << x;
  out << "\n";
}

std::vector<double> read_doubles(std::istream& in) {
  std::size_t count = 0;
  in >> count;
  std::vector<double> xs(count);
  for (double& x : xs) in >> x;
  return xs;
}

void write_matrix(std::ostream& out, const nn::Matrix& m) {
  out << m.rows() << " " << m.cols() << "\n";
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) out << m(r, c) << (c + 1 == m.cols() ? '\n' : ' ');
  }
}

/// Atomic checkpoint write: everything needed to resume with an identical
/// trajectory - episode cursor, stats, parameter values, the partially
/// accumulated batch gradient, Adam moments. Streamed as text at
/// max_digits10, which round-trips exactly. No RNG state is needed: every
/// episode reseeds its private RNG from mix_seed(seed + episode index).
void save_checkpoint(const std::string& path, int next_episode, const TrainStats& stats,
                     const std::vector<nn::Var>& params,
                     const std::vector<nn::Matrix>& grad_accum, const nn::Adam* adam) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "reinforce-checkpoint v2\n" << next_episode << "\n";
  write_doubles(out, stats.episode_initial);
  write_doubles(out, stats.episode_final);
  write_doubles(out, stats.episode_best);
  out << params.size() << "\n";
  for (const nn::Var& p : params) write_matrix(out, p->value);
  // The gradient accumulated so far within the current batch (empty slots
  // are parameters untouched since the last optimizer step); a checkpoint
  // mid-batch must carry it or the resumed run would lose those episodes'
  // contribution to the next update.
  for (std::size_t k = 0; k < params.size(); ++k) {
    if (k < grad_accum.size() && grad_accum[k].size() > 0) {
      out << 1 << "\n";
      write_matrix(out, grad_accum[k]);
    } else {
      out << 0 << "\n";
    }
  }
  out << (adam != nullptr ? 1 : 0) << "\n";
  if (adam != nullptr) adam->save(out);
  // Checksum + length frame, committed via write-to-temp + atomic rename:
  // a crash mid-write keeps the previous checkpoint valid, and a torn copy
  // (power loss between write and rename of a non-atomic filesystem, manual
  // truncation) fails loudly at resume instead of resuming from garbage.
  util::write_checked_file(path, "reinforce-checkpoint", out.str());
}

void read_matrix_into(std::istream& in, nn::Matrix& m, const std::string& path) {
  int rows = 0, cols = 0;
  in >> rows >> cols;
  if (!in || rows != m.rows() || cols != m.cols()) {
    throw std::runtime_error("checkpoint: matrix shape mismatch in " + path);
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) in >> m(r, c);
  }
}

/// Restores a checkpoint written by save_checkpoint; returns the episode to
/// resume from. Throws std::runtime_error on malformed input or a parameter
/// shape mismatch (e.g. resuming with a different model variant).
int load_checkpoint(const std::string& path, TrainStats& stats,
                    const std::vector<nn::Var>& params,
                    std::vector<nn::Matrix>& grad_accum, nn::Adam* adam) {
  // Validates the checksum + length frame when present (torn-write
  // detection); pre-framing checkpoints pass through unwrapped.
  std::istringstream in(util::read_checked_file(path, "reinforce-checkpoint"));
  std::string magic, version;
  in >> magic >> version;
  if (!in || magic != "reinforce-checkpoint") {
    throw std::runtime_error("checkpoint: bad header in " + path);
  }
  if (version == "v1") {
    throw std::runtime_error(
        "checkpoint: " + path +
        " uses the retired v1 format (pre-parallel-rollout trainer, carries "
        "sequential RNG state that no longer exists); delete it and restart "
        "training — v2 checkpoints are RNG-free and worker-count independent");
  }
  if (version != "v2") {
    throw std::runtime_error("checkpoint: unknown format version '" + version +
                             "' in " + path + " (this build reads v2)");
  }
  int next_episode = 0;
  in >> next_episode;
  stats.episode_initial = read_doubles(in);
  stats.episode_final = read_doubles(in);
  stats.episode_best = read_doubles(in);
  std::size_t count = 0;
  in >> count;
  if (!in || count != params.size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch in " + path);
  }
  for (const nn::Var& p : params) read_matrix_into(in, p->value, path);
  grad_accum.assign(params.size(), nn::Matrix());
  for (std::size_t k = 0; k < params.size(); ++k) {
    int present = 0;
    in >> present;
    if (!in) throw std::runtime_error("checkpoint: truncated file " + path);
    if (present != 0) {
      grad_accum[k] = nn::Matrix::zeros(params[k]->value.rows(), params[k]->value.cols());
      read_matrix_into(in, grad_accum[k], path);
    }
  }
  int has_adam = 0;
  in >> has_adam;
  if (!in) throw std::runtime_error("checkpoint: truncated file " + path);
  if (has_adam != 0) {
    if (adam == nullptr) {
      throw std::runtime_error("checkpoint: optimizer state present but unused in " +
                               path);
    }
    adam->load(in);
  }
  return next_episode;
}

/// Everything one episode hands back to the (ordered) reduction: the stats
/// row and, for learned policies, this episode's parameter gradient.
struct EpisodeOutcome {
  double initial = 0.0;
  double final_obj = 0.0;
  double best = 0.0;
  bool has_grads = false;
  std::vector<nn::Matrix> grads;  ///< per-param; empty entries were untouched
};

/// One rollout worker's long-lived state. Worker 0 wraps the caller's policy;
/// workers >= 1 own same-architecture clones whose parameter values are
/// re-broadcast from the master before every batch. The environment is
/// reused across episodes (reinit) so steady-state training allocates no
/// fresh workspaces.
struct RolloutWorker {
  SearchPolicy* policy = nullptr;
  std::unique_ptr<SearchPolicy> owned;
  std::vector<nn::Var> params;
  std::optional<PlacementSearchEnv> env;
  std::mt19937_64 rng;
};

/// Rolls out episode `episode` on worker `w` and computes its REINFORCE (or
/// actor-critic) gradient into the worker's private parameter buffers, which
/// are then moved into the returned outcome. All randomness comes from the
/// worker's RNG reseeded with mix_seed(seed + episode), so the result depends
/// only on (options, episode index, parameter values) — not on which worker
/// ran it.
EpisodeOutcome run_episode(RolloutWorker& w, const LatencyModel& lat,
                           const InstanceSampler& sampler, const TrainOptions& opt,
                           int episode) {
  w.rng.seed(mix_seed(opt.seed + static_cast<std::uint64_t>(episode)));
  std::mt19937_64& rng = w.rng;
  const ProblemInstance inst = sampler(rng);
  const TaskGraph& g = *inst.graph;
  const DeviceNetwork& n = *inst.network;

  const double denom = opt.normalizer ? opt.normalizer(g, n) : slr_denominator(g, n, lat);
  ScheduleObjective obj;
  if (opt.objective_factory) {
    obj = opt.objective_factory(g, n, rng);
  } else {
    obj = opt.noise > 0.0 ? noisy_makespan_objective(lat, opt.noise, rng)
                          : makespan_objective(lat);
  }
  Placement initial = random_placement(g, n, rng);
  if (w.env) {
    w.env->reinit(g, n, std::move(obj), std::move(initial), denom);
  } else {
    w.env.emplace(g, n, lat, std::move(obj), std::move(initial), denom);
  }
  PlacementSearchEnv& env = *w.env;
  SearchPolicy& policy = *w.policy;

  const int limit = policy.episode_limit(g);
  const int T = limit > 0 ? limit : opt.episode_len_factor * g.num_tasks();

  policy.begin_episode();
  std::vector<nn::Var> log_probs;
  std::vector<nn::Var> values;
  std::vector<double> rewards;
  log_probs.reserve(T);
  rewards.reserve(T);
  EpisodeOutcome out;
  out.initial = env.objective();

  for (int t = 0; t < T; ++t) {
    ActionDecision d = policy.decide(env, rng, /*greedy=*/false);
    const double r =
        d.full ? env.apply_placement(*std::move(d.full)) : env.apply(d.action);
    if (d.log_prob) {
      log_probs.push_back(std::move(d.log_prob));
      rewards.push_back(r);
      if (d.value) values.push_back(std::move(d.value));
    }
  }
  out.final_obj = env.objective();
  out.best = env.best_objective();

  if (!w.params.empty() && !log_probs.empty()) {
    const int steps = static_cast<int>(rewards.size());
    // Discounted returns G_t.
    std::vector<double> returns(steps);
    double acc = 0.0;
    for (int t = steps - 1; t >= 0; --t) {
      acc = rewards[t] + opt.gamma * acc;
      returns[t] = acc;
    }
    // Baseline: the critic's state values when available (actor-critic
    // extension), otherwise the average reward observed before step t
    // within the episode (the paper's baseline).
    const bool use_critic = static_cast<int>(values.size()) == steps && steps > 0;
    std::vector<double> adv(steps);
    double reward_sum = 0.0;
    for (int t = 0; t < steps; ++t) {
      const double baseline =
          use_critic ? values[t]->value(0, 0) : (t > 0 ? reward_sum / t : 0.0);
      adv[t] = returns[t] - baseline;
      reward_sum += rewards[t];
    }
    if (opt.normalize_advantages && steps > 1) {
      double mean = 0.0, sq = 0.0;
      for (double a : adv) mean += a;
      mean /= steps;
      for (double a : adv) sq += (a - mean) * (a - mean);
      const double sd = std::sqrt(sq / steps);
      if (sd > 1e-9) {
        for (double& a : adv) a = (a - mean) / sd;
      }
    }
    std::vector<double> weights(steps);
    for (int t = 0; t < steps; ++t) {
      const double w_t = opt.discount_state_weight ? std::pow(opt.gamma, t) : 1.0;
      weights[t] = -w_t * adv[t];
    }
    nn::Var loss = nn::weighted_sum(log_probs, weights);
    if (use_critic) {
      // Value regression towards the Monte-Carlo returns.
      std::vector<nn::Var> sq_errors;
      std::vector<double> vweights;
      sq_errors.reserve(steps);
      for (int t = 0; t < steps; ++t) {
        const nn::Var diff =
            nn::sub(values[t], nn::constant(nn::Matrix::scalar(returns[t])));
        sq_errors.push_back(nn::mul(diff, diff));
        vweights.push_back(opt.value_coef / steps);
      }
      loss = nn::add(loss, nn::weighted_sum(sq_errors, vweights));
    }
    // Backward accumulates into this worker's private parameter leaves
    // (zeroed by the previous take_grads), yielding exactly this episode's
    // gradient — the reduction adds it to the master accumulator in episode
    // order.
    nn::backward(loss);
    out.grads = nn::take_grads(w.params);
    out.has_grads = true;
  }
  return out;
}

}  // namespace

void validate_train_options(const TrainOptions& opt) {
  if (opt.rollout_workers < 1) {
    throw std::invalid_argument("train_reinforce: rollout_workers must be >= 1, got " +
                                std::to_string(opt.rollout_workers));
  }
  if (opt.batch_episodes < 1) {
    throw std::invalid_argument("train_reinforce: batch_episodes must be >= 1, got " +
                                std::to_string(opt.batch_episodes));
  }
  if (opt.checkpoint_every < 0) {
    throw std::invalid_argument("train_reinforce: checkpoint_every must be >= 0, got " +
                                std::to_string(opt.checkpoint_every));
  }
}

TrainStats train_reinforce(SearchPolicy& policy, const LatencyModel& lat,
                           const InstanceSampler& sampler, const TrainOptions& opt) {
  validate_train_options(opt);
  const std::vector<nn::Var> params = policy.parameters();
  std::unique_ptr<nn::Adam> adam;
  if (!params.empty()) adam = std::make_unique<nn::Adam>(params, opt.lr);
  // The per-batch gradient, reduced from per-episode gradients in episode
  // order. Kept outside the parameter leaves so worker 0 (the master policy)
  // can compute fresh per-episode gradients without disturbing it.
  std::vector<nn::Matrix> grad_accum(params.size());
  for (const nn::Var& p : params) p->grad = nn::Matrix();

  TrainStats stats;
  int start_episode = 0;
  if (opt.resume && !opt.checkpoint_path.empty() &&
      std::filesystem::exists(opt.checkpoint_path)) {
    start_episode =
        load_checkpoint(opt.checkpoint_path, stats, params, grad_accum, adam.get());
  }

  // Rollout workers: worker 0 is the caller's policy; the rest are clones.
  // A policy that cannot clone trains sequentially regardless of the
  // requested worker count (the results are identical either way).
  int workers = std::min(opt.rollout_workers, std::max(1, opt.batch_episodes));
  std::vector<RolloutWorker> rollout(1);
  rollout[0].policy = &policy;
  rollout[0].params = params;
  for (int w = 1; w < workers; ++w) {
    std::unique_ptr<SearchPolicy> clone = policy.clone_for_rollout();
    if (!clone) {
      workers = 1;
      rollout.resize(1);
      break;
    }
    RolloutWorker worker;
    worker.policy = clone.get();
    worker.params = clone->parameters();
    worker.owned = std::move(clone);
    rollout.push_back(std::move(worker));
  }
  // The pool persists across batches: threads are spawned once, not per
  // optimizer step.
  std::unique_ptr<util::WorkerPool> pool;
  if (workers > 1) pool = std::make_unique<util::WorkerPool>(workers);

  const int batch = opt.batch_episodes;
  int ep = start_episode;
  while (ep < opt.episodes) {
    // One gradient-accumulation group, aligned to absolute episode indices
    // so a resumed run rejoins its batch mid-way.
    const int group_end = std::min(opt.episodes, (ep / batch + 1) * batch);
    const int count = group_end - ep;
    std::vector<EpisodeOutcome> outcomes(count);
    if (pool && count > 1) {
      // Broadcast the post-update parameter values to every clone; within a
      // batch all episodes see the same values, exactly as sequentially.
      for (int w = 1; w < workers; ++w) nn::copy_values(params, rollout[w].params);
      pool->run(count, [&](int i, int w) {
        outcomes[i] = run_episode(rollout[w], lat, sampler, opt, ep + i);
      });
    } else {
      for (int i = 0; i < count; ++i) {
        outcomes[i] = run_episode(rollout[0], lat, sampler, opt, ep + i);
      }
    }

    // Ordered reduction: stats, gradient accumulation, optimizer step,
    // callbacks, and checkpoints replay the episodes in index order, so the
    // observable trajectory is the sequential one.
    for (int i = 0; i < count; ++i) {
      const int e = ep + i;
      EpisodeOutcome& out = outcomes[i];
      stats.episode_initial.push_back(out.initial);
      stats.episode_final.push_back(out.final_obj);
      stats.episode_best.push_back(out.best);
      if (out.has_grads) nn::add_grads(grad_accum, std::move(out.grads));
      if (adam && out.has_grads && (e + 1) % batch == 0) {
        if (opt.lr_final >= 0.0 && opt.lr_final < opt.lr && opt.episodes > 1) {
          const double frac = static_cast<double>(e) / (opt.episodes - 1);
          adam->set_learning_rate(opt.lr + frac * (opt.lr_final - opt.lr));
        }
        nn::install_grads(params, std::move(grad_accum));
        grad_accum.assign(params.size(), nn::Matrix());
        nn::clip_grad_norm(params, opt.grad_clip);
        adam->step();
      }
      if (opt.on_episode) opt.on_episode(e);
      if (opt.checkpoint_every > 0 && !opt.checkpoint_path.empty() &&
          (e + 1) % opt.checkpoint_every == 0) {
        save_checkpoint(opt.checkpoint_path, e + 1, stats, params, grad_accum,
                        adam.get());
      }
    }
    ep = group_end;
  }
  return stats;
}

SearchTrace run_search(SearchPolicy& policy, PlacementSearchEnv& env, int steps,
                       std::mt19937_64& rng, bool greedy) {
  return run_search_anytime(policy, env, steps, rng, greedy, nullptr);
}

SearchTrace run_search_anytime(SearchPolicy& policy, PlacementSearchEnv& env, int steps,
                               std::mt19937_64& rng, bool greedy, const SearchStop& stop,
                               bool* stopped_early) {
  SearchTrace trace;
  if (stopped_early != nullptr) *stopped_early = false;
  trace.initial = env.objective();
  trace.move_counts.assign(env.graph().num_tasks(), 0);
  const int limit = policy.episode_limit(env.graph());

  policy.begin_episode();
  int since_reset = 0;
  for (int t = 0; t < steps; ++t) {
    // The anytime check sits between steps, before any RNG draw of step t:
    // stopping truncates the trajectory without perturbing the steps already
    // taken, so a fixed-step stop is bitwise-equal to a shorter budget.
    if (stop && stop()) {
      if (stopped_early != nullptr) *stopped_early = true;
      break;
    }
    if (limit > 0 && since_reset >= limit) {
      env.reset_to_initial();
      policy.begin_episode();
      since_reset = 0;
    }
    ActionDecision d = policy.decide(env, rng, greedy);
    if (d.full) {
      // Count every task whose device changed as a move.
      for (int v = 0; v < env.graph().num_tasks(); ++v) {
        if (d.full->device_of(v) != env.placement().device_of(v)) ++trace.move_counts[v];
      }
      env.apply_placement(*std::move(d.full));
    } else {
      env.apply(d.action);
      ++trace.move_counts[d.action.task];
    }
    trace.best_so_far.push_back(env.best_objective());
    ++since_reset;
  }
  trace.best_placement = env.best_placement();
  return trace;
}

}  // namespace giph
