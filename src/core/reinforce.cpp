#include "core/reinforce.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace giph {
namespace {

void write_doubles(std::ostream& out, const std::vector<double>& xs) {
  out << xs.size();
  for (double x : xs) out << " " << x;
  out << "\n";
}

std::vector<double> read_doubles(std::istream& in) {
  std::size_t count = 0;
  in >> count;
  std::vector<double> xs(count);
  for (double& x : xs) in >> x;
  return xs;
}

/// Atomic checkpoint write: everything needed to resume with an identical
/// trajectory - episode cursor, RNG state, stats, parameter values, Adam
/// moments. Streamed as text at max_digits10, which round-trips exactly.
void save_checkpoint(const std::string& path, int next_episode, std::mt19937_64& rng,
                     const TrainStats& stats, const std::vector<nn::Var>& params,
                     const nn::Adam* adam) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) throw std::runtime_error("checkpoint: cannot open " + tmp);
    out.precision(std::numeric_limits<double>::max_digits10);
    out << "reinforce-checkpoint v1\n" << next_episode << "\n" << rng << "\n";
    write_doubles(out, stats.episode_initial);
    write_doubles(out, stats.episode_final);
    write_doubles(out, stats.episode_best);
    out << params.size() << "\n";
    for (const nn::Var& p : params) {
      const nn::Matrix& m = p->value;
      out << m.rows() << " " << m.cols() << "\n";
      for (int r = 0; r < m.rows(); ++r) {
        for (int c = 0; c < m.cols(); ++c) out << m(r, c) << (c + 1 == m.cols() ? '\n' : ' ');
      }
    }
    out << (adam != nullptr ? 1 : 0) << "\n";
    if (adam != nullptr) adam->save(out);
    if (!out) throw std::runtime_error("checkpoint: write failed: " + tmp);
  }
  std::filesystem::rename(tmp, path);  // atomic on POSIX: old file stays valid
}

/// Restores a checkpoint written by save_checkpoint; returns the episode to
/// resume from. Throws std::runtime_error on malformed input or a parameter
/// shape mismatch (e.g. resuming with a different model variant).
int load_checkpoint(const std::string& path, std::mt19937_64& rng, TrainStats& stats,
                    const std::vector<nn::Var>& params, nn::Adam* adam) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  std::string magic, version;
  in >> magic >> version;
  if (!in || magic != "reinforce-checkpoint" || version != "v1") {
    throw std::runtime_error("checkpoint: bad header in " + path);
  }
  int next_episode = 0;
  in >> next_episode >> rng;
  stats.episode_initial = read_doubles(in);
  stats.episode_final = read_doubles(in);
  stats.episode_best = read_doubles(in);
  std::size_t count = 0;
  in >> count;
  if (!in || count != params.size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch in " + path);
  }
  for (const nn::Var& p : params) {
    int rows = 0, cols = 0;
    in >> rows >> cols;
    if (!in || rows != p->value.rows() || cols != p->value.cols()) {
      throw std::runtime_error("checkpoint: parameter shape mismatch in " + path);
    }
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) in >> p->value(r, c);
    }
  }
  int has_adam = 0;
  in >> has_adam;
  if (!in) throw std::runtime_error("checkpoint: truncated file " + path);
  if (has_adam != 0) {
    if (adam == nullptr) {
      throw std::runtime_error("checkpoint: optimizer state present but unused in " + path);
    }
    adam->load(in);
  }
  return next_episode;
}

}  // namespace

TrainStats train_reinforce(SearchPolicy& policy, const LatencyModel& lat,
                           const InstanceSampler& sampler, const TrainOptions& opt) {
  std::mt19937_64 rng(opt.seed);
  const std::vector<nn::Var> params = policy.parameters();
  std::unique_ptr<nn::Adam> adam;
  if (!params.empty()) adam = std::make_unique<nn::Adam>(params, opt.lr);

  TrainStats stats;
  int start_episode = 0;
  if (opt.resume && !opt.checkpoint_path.empty() &&
      std::filesystem::exists(opt.checkpoint_path)) {
    start_episode = load_checkpoint(opt.checkpoint_path, rng, stats, params, adam.get());
  }
  for (int ep = start_episode; ep < opt.episodes; ++ep) {
    const ProblemInstance inst = sampler(rng);
    const TaskGraph& g = *inst.graph;
    const DeviceNetwork& n = *inst.network;

    const double denom =
        opt.normalizer ? opt.normalizer(g, n) : slr_denominator(g, n, lat);
    ScheduleObjective obj;
    if (opt.objective_factory) {
      obj = opt.objective_factory(g, n, rng);
    } else {
      obj = opt.noise > 0.0 ? noisy_makespan_objective(lat, opt.noise, rng)
                            : makespan_objective(lat);
    }
    PlacementSearchEnv env(g, n, lat, std::move(obj), random_placement(g, n, rng), denom);

    const int limit = policy.episode_limit(g);
    const int T = limit > 0 ? limit : opt.episode_len_factor * g.num_tasks();

    policy.begin_episode();
    std::vector<nn::Var> log_probs;
    std::vector<nn::Var> values;
    std::vector<double> rewards;
    log_probs.reserve(T);
    rewards.reserve(T);
    stats.episode_initial.push_back(env.objective());

    for (int t = 0; t < T; ++t) {
      ActionDecision d = policy.decide(env, rng, /*greedy=*/false);
      const double r = d.full ? env.apply_placement(*std::move(d.full)) : env.apply(d.action);
      if (d.log_prob) {
        log_probs.push_back(std::move(d.log_prob));
        rewards.push_back(r);
        if (d.value) values.push_back(std::move(d.value));
      }
    }
    stats.episode_final.push_back(env.objective());
    stats.episode_best.push_back(env.best_objective());

    if (adam && !log_probs.empty()) {
      const int steps = static_cast<int>(rewards.size());
      // Discounted returns G_t.
      std::vector<double> returns(steps);
      double acc = 0.0;
      for (int t = steps - 1; t >= 0; --t) {
        acc = rewards[t] + opt.gamma * acc;
        returns[t] = acc;
      }
      // Baseline: the critic's state values when available (actor-critic
      // extension), otherwise the average reward observed before step t
      // within the episode (the paper's baseline).
      const bool use_critic = static_cast<int>(values.size()) == steps && steps > 0;
      std::vector<double> adv(steps);
      double reward_sum = 0.0;
      for (int t = 0; t < steps; ++t) {
        const double baseline =
            use_critic ? values[t]->value(0, 0) : (t > 0 ? reward_sum / t : 0.0);
        adv[t] = returns[t] - baseline;
        reward_sum += rewards[t];
      }
      if (opt.normalize_advantages && steps > 1) {
        double mean = 0.0, sq = 0.0;
        for (double a : adv) mean += a;
        mean /= steps;
        for (double a : adv) sq += (a - mean) * (a - mean);
        const double sd = std::sqrt(sq / steps);
        if (sd > 1e-9) {
          for (double& a : adv) a = (a - mean) / sd;
        }
      }
      std::vector<double> weights(steps);
      for (int t = 0; t < steps; ++t) {
        const double w = opt.discount_state_weight ? std::pow(opt.gamma, t) : 1.0;
        weights[t] = -w * adv[t];
      }
      nn::Var loss = nn::weighted_sum(log_probs, weights);
      if (use_critic) {
        // Value regression towards the Monte-Carlo returns.
        std::vector<nn::Var> sq_errors;
        std::vector<double> vweights;
        sq_errors.reserve(steps);
        for (int t = 0; t < steps; ++t) {
          const nn::Var diff =
              nn::sub(values[t], nn::constant(nn::Matrix::scalar(returns[t])));
          sq_errors.push_back(nn::mul(diff, diff));
          vweights.push_back(opt.value_coef / steps);
        }
        loss = nn::add(loss, nn::weighted_sum(sq_errors, vweights));
      }
      nn::backward(loss);
      if ((ep + 1) % std::max(1, opt.batch_episodes) == 0) {
        if (opt.lr_final >= 0.0 && opt.lr_final < opt.lr && opt.episodes > 1) {
          const double frac = static_cast<double>(ep) / (opt.episodes - 1);
          adam->set_learning_rate(opt.lr + frac * (opt.lr_final - opt.lr));
        }
        nn::clip_grad_norm(params, opt.grad_clip);
        adam->step();
      }
    }
    if (opt.on_episode) opt.on_episode(ep);
    if (opt.checkpoint_every > 0 && !opt.checkpoint_path.empty() &&
        (ep + 1) % opt.checkpoint_every == 0) {
      save_checkpoint(opt.checkpoint_path, ep + 1, rng, stats, params, adam.get());
    }
  }
  return stats;
}

SearchTrace run_search(SearchPolicy& policy, PlacementSearchEnv& env, int steps,
                       std::mt19937_64& rng, bool greedy) {
  SearchTrace trace;
  trace.initial = env.objective();
  trace.move_counts.assign(env.graph().num_tasks(), 0);
  const int limit = policy.episode_limit(env.graph());

  policy.begin_episode();
  int since_reset = 0;
  for (int t = 0; t < steps; ++t) {
    if (limit > 0 && since_reset >= limit) {
      env.reset_to_initial();
      policy.begin_episode();
      since_reset = 0;
    }
    ActionDecision d = policy.decide(env, rng, greedy);
    if (d.full) {
      // Count every task whose device changed as a move.
      for (int v = 0; v < env.graph().num_tasks(); ++v) {
        if (d.full->device_of(v) != env.placement().device_of(v)) ++trace.move_counts[v];
      }
      env.apply_placement(*std::move(d.full));
    } else {
      env.apply(d.action);
      ++trace.move_counts[d.action.task];
    }
    trace.best_so_far.push_back(env.best_objective());
    ++since_reset;
  }
  trace.best_placement = env.best_placement();
  return trace;
}

}  // namespace giph
