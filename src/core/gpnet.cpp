#include "core/gpnet.hpp"

#include <algorithm>
#include <stdexcept>

namespace giph {

int GraphView::add_node() {
  in_edges.emplace_back();
  out_edges.emplace_back();
  return num_nodes++;
}

int GraphView::add_edge(int src, int dst) {
  const int e = static_cast<int>(edges.size());
  edges.emplace_back(src, dst);
  out_edges.at(src).push_back(e);
  in_edges.at(dst).push_back(e);
  return e;
}

void GraphView::finalize() {
  topo.clear();
  topo.reserve(num_nodes);
  std::vector<int> indeg(num_nodes);
  for (int v = 0; v < num_nodes; ++v) indeg[v] = static_cast<int>(in_edges[v].size());
  for (int v = 0; v < num_nodes; ++v) {
    if (indeg[v] == 0) topo.push_back(v);
  }
  for (std::size_t head = 0; head < topo.size(); ++head) {
    for (int e : out_edges[topo[head]]) {
      if (--indeg[edges[e].second] == 0) topo.push_back(edges[e].second);
    }
  }
  if (static_cast<int>(topo.size()) != num_nodes) {
    throw std::logic_error("GraphView::finalize: graph is cyclic");
  }
}

GraphView graph_view_of(const TaskGraph& g) {
  GraphView v;
  for (int i = 0; i < g.num_tasks(); ++i) v.add_node();
  for (const DataLink& e : g.edges()) v.add_edge(e.src, e.dst);
  v.finalize();
  return v;
}

GpNet build_gpnet(const TaskGraph& g, const DeviceNetwork& n, const Placement& placement,
                  const std::vector<std::vector<int>>& feasible) {
  if (!is_feasible(g, n, placement)) {
    throw std::invalid_argument("build_gpnet: infeasible placement");
  }
  GpNet net;
  const int nv = g.num_tasks();
  net.options.resize(nv);
  net.pivot_of_task.assign(nv, -1);

  // Node generation: one node per feasible (task, device) pair; options are
  // laid out following the task graph's topological order so that gpNet edges
  // (which follow G's edges) always point from lower to higher layout
  // positions, making `finalize` cheap and the layout itself topological.
  for (int v : g.topological_order()) {
    for (int d : feasible[v]) {
      const int u = net.view.add_node();
      net.node_task.push_back(v);
      net.node_device.push_back(d);
      const bool pivot = placement.device_of(v) == d;
      net.is_pivot.push_back(pivot);
      net.options[v].push_back(u);
      if (pivot) net.pivot_of_task[v] = u;
    }
  }

  // Edge generation: (u1, u2) for each task edge (i, j) when u1 or u2 is a
  // pivot.
  for (int e = 0; e < g.num_edges(); ++e) {
    const DataLink& link = g.edge(e);
    for (int u1 : net.options[link.src]) {
      for (int u2 : net.options[link.dst]) {
        if (net.is_pivot[u1] || net.is_pivot[u2]) {
          net.view.add_edge(u1, u2);
          net.edge_task_edge.push_back(e);
        }
      }
    }
  }
  net.view.finalize();
  return net;
}

GpNet build_gpnet_topk(const TaskGraph& g, const DeviceNetwork& n,
                       const Placement& placement,
                       const std::vector<std::vector<int>>& feasible, int k,
                       const std::vector<double>& est) {
  if (k < 0) throw std::invalid_argument("build_gpnet_topk: k must be >= 0");
  if (!is_feasible(g, n, placement)) {
    throw std::invalid_argument("build_gpnet_topk: infeasible placement");
  }
  const int nv = g.num_tasks();
  const int nd = n.num_devices();
  if (est.size() != static_cast<std::size_t>(nv) * nd) {
    throw std::invalid_argument("build_gpnet_topk: est table size mismatch");
  }

  GpNet net;
  net.options.resize(nv);
  net.pivot_of_task.assign(nv, -1);

  // Same node layout discipline as build_gpnet: tasks in topological order,
  // selected devices in feasible-list order. `cand` ranks the non-pivot
  // devices of one task by (EST, feasible position); `selected` marks the
  // surviving feasible positions.
  std::vector<std::pair<double, int>> cand;
  std::vector<char> selected;
  for (int v : g.topological_order()) {
    const std::vector<int>& fd = feasible[v];
    const int nf = static_cast<int>(fd.size());
    const double* row = est.data() + static_cast<std::size_t>(v) * nd;
    selected.assign(fd.size(), 1);
    if (nf > k + 1) {
      cand.clear();
      for (int i = 0; i < nf; ++i) {
        if (fd[i] != placement.device_of(v)) cand.emplace_back(row[fd[i]], i);
      }
      std::nth_element(cand.begin(), cand.begin() + k, cand.end());
      selected.assign(fd.size(), 0);
      for (int i = 0; i < k; ++i) selected[cand[i].second] = 1;
      // The pivot is not in `cand`, so it always survives.
      for (int i = 0; i < nf; ++i) {
        if (fd[i] == placement.device_of(v)) selected[i] = 1;
      }
    }
    for (int i = 0; i < nf; ++i) {
      if (!selected[i]) continue;
      const int d = fd[i];
      const int u = net.view.add_node();
      net.node_task.push_back(v);
      net.node_device.push_back(d);
      const bool pivot = placement.device_of(v) == d;
      net.is_pivot.push_back(pivot);
      net.options[v].push_back(u);
      if (pivot) net.pivot_of_task[v] = u;
    }
  }

  for (int e = 0; e < g.num_edges(); ++e) {
    const DataLink& link = g.edge(e);
    for (int u1 : net.options[link.src]) {
      for (int u2 : net.options[link.dst]) {
        if (net.is_pivot[u1] || net.is_pivot[u2]) {
          net.view.add_edge(u1, u2);
          net.edge_task_edge.push_back(e);
        }
      }
    }
  }
  net.view.finalize();
  return net;
}

}  // namespace giph
