#include "core/gnn.hpp"

#include <stdexcept>

namespace giph {

using nn::Var;
using nn::concat_cols;
using nn::concat_rows;
using nn::relu;

GraphEncoder::GraphEncoder(nn::ParamRegistry& reg, const GnnConfig& cfg,
                           std::mt19937_64& rng)
    : cfg_(cfg) {
  const int nd = cfg.node_dim;
  const int ed = cfg.edge_dim;
  const int eo = cfg.embed_dim;
  switch (cfg.kind) {
    case GnnKind::kGiPH:
    case GnnKind::kGiPHK: {
      // Node transform dim_n -> dim_n -> dim_o; message (dim_o + dim_e) ->
      // (dim_o + dim_e); aggregation (dim_o + dim_e) -> dim_o (Table 5).
      pre_embed_ = nn::MLP(reg, "gnn.pre", {nd, nd, eo}, rng, nn::Activation::kRelu,
                           nn::Activation::kNone);
      fwd_.message = nn::Linear(reg, "gnn.fwd.msg", eo + ed, eo + ed, rng);
      fwd_.aggregate = nn::Linear(reg, "gnn.fwd.agg", eo + ed, eo, rng);
      bwd_.message = nn::Linear(reg, "gnn.bwd.msg", eo + ed, eo + ed, rng);
      bwd_.aggregate = nn::Linear(reg, "gnn.bwd.agg", eo + ed, eo, rng);
      out_dim_ = 2 * eo;
      break;
    }
    case GnnKind::kGiPHNE: {
      cfg_.edge_dim = 0;  // edge features are folded into the node features
      pre_embed_ = nn::MLP(reg, "gnn.pre", {nd, nd, eo}, rng, nn::Activation::kRelu,
                           nn::Activation::kNone);
      fwd_.message = nn::Linear(reg, "gnn.fwd.msg", eo, eo, rng);
      fwd_.aggregate = nn::Linear(reg, "gnn.fwd.agg", eo, eo, rng);
      bwd_.message = nn::Linear(reg, "gnn.bwd.msg", eo, eo, rng);
      bwd_.aggregate = nn::Linear(reg, "gnn.bwd.agg", eo, eo, rng);
      out_dim_ = 2 * eo;
      break;
    }
    case GnnKind::kGraphSAGE: {
      // Node transform dim_n -> 16, then k layers [h_u || mean h_par] -> 16,
      // last layer -> dim_o (Table 5 uses dim_o = 10 with k = 3).
      constexpr int kHidden = 16;
      sage_transform_ = nn::Linear(reg, "gnn.sage.t", nd, kHidden, rng);
      for (int l = 0; l < cfg.k_steps; ++l) {
        const int out = l + 1 == cfg.k_steps ? 2 * eo : kHidden;
        sage_layers_.emplace_back(reg, "gnn.sage.l" + std::to_string(l), 2 * kHidden,
                                  out, rng);
      }
      out_dim_ = 2 * eo;
      break;
    }
    case GnnKind::kNone:
      out_dim_ = nd;
      break;
  }
}

std::vector<Var> GraphEncoder::pass_sequential(const GraphView& view, const Var& pre,
                                               const Var& edge_feats,
                                               const Direction& dir, bool forward) const {
  const bool use_edges = cfg_.edge_dim > 0;
  std::vector<Var> emb(view.num_nodes);
  auto process = [&](int u) {
    const auto& incoming = forward ? view.in_edges[u] : view.out_edges[u];
    const Var self = row(pre, u);
    if (incoming.empty()) {
      emb[u] = self;
      return;
    }
    std::vector<Var> msgs;
    msgs.reserve(incoming.size());
    for (int e : incoming) {
      const int v = forward ? view.edges[e].first : view.edges[e].second;
      if (use_edges) {
        msgs.push_back(concat_cols({emb[v], row(edge_feats, e)}));
      } else {
        msgs.push_back(emb[v]);
      }
    }
    const Var stacked = msgs.size() == 1 ? msgs[0] : concat_rows(msgs);
    const Var aggregated = mean_rows(relu(dir.message(stacked)));
    emb[u] = add(relu(dir.aggregate(aggregated)), self);
  };
  if (forward) {
    for (int u : view.topo) process(u);
  } else {
    for (auto it = view.topo.rbegin(); it != view.topo.rend(); ++it) process(*it);
  }
  return emb;
}

std::vector<Var> GraphEncoder::pass_k_steps(const GraphView& view, const Var& pre,
                                            const Var& edge_feats, const Direction& dir,
                                            bool forward) const {
  const bool use_edges = cfg_.edge_dim > 0;
  std::vector<Var> emb(view.num_nodes);
  for (int u = 0; u < view.num_nodes; ++u) emb[u] = row(pre, u);
  for (int step = 0; step < cfg_.k_steps; ++step) {
    std::vector<Var> next(view.num_nodes);
    for (int u = 0; u < view.num_nodes; ++u) {
      const auto& incoming = forward ? view.in_edges[u] : view.out_edges[u];
      const Var self = row(pre, u);
      if (incoming.empty()) {
        next[u] = self;
        continue;
      }
      std::vector<Var> msgs;
      msgs.reserve(incoming.size());
      for (int e : incoming) {
        const int v = forward ? view.edges[e].first : view.edges[e].second;
        if (use_edges) {
          msgs.push_back(concat_cols({emb[v], row(edge_feats, e)}));
        } else {
          msgs.push_back(emb[v]);
        }
      }
      const Var stacked = msgs.size() == 1 ? msgs[0] : concat_rows(msgs);
      const Var aggregated = mean_rows(relu(dir.message(stacked)));
      next[u] = add(relu(dir.aggregate(aggregated)), self);
    }
    emb = std::move(next);
  }
  return emb;
}

Var GraphEncoder::encode(const GraphView& view, const nn::Matrix& node_features,
                         const nn::Matrix& edge_features) const {
  if (node_features.rows() != view.num_nodes || node_features.cols() != cfg_.node_dim) {
    throw std::invalid_argument("GraphEncoder::encode: node feature shape mismatch");
  }
  const Var nodes = nn::constant(node_features);
  if (cfg_.kind == GnnKind::kNone) return nodes;

  const Var edges = nn::constant(edge_features);

  if (cfg_.kind == GnnKind::kGraphSAGE) {
    std::vector<Var> emb(view.num_nodes);
    {
      const Var h0 = relu(sage_transform_(nodes));
      for (int u = 0; u < view.num_nodes; ++u) emb[u] = row(h0, u);
    }
    for (const nn::Linear& layer : sage_layers_) {
      std::vector<Var> next(view.num_nodes);
      for (int u = 0; u < view.num_nodes; ++u) {
        Var neigh;
        if (view.in_edges[u].empty()) {
          neigh = nn::constant(nn::Matrix::zeros(1, emb[u]->value.cols()));
        } else {
          std::vector<Var> ms;
          ms.reserve(view.in_edges[u].size());
          for (int e : view.in_edges[u]) ms.push_back(emb[view.edges[e].first]);
          neigh = ms.size() == 1 ? ms[0] : mean_rows(concat_rows(ms));
        }
        next[u] = relu(layer(concat_cols({emb[u], neigh})));
      }
      emb = std::move(next);
    }
    return concat_rows(emb);
  }

  const Var pre = pre_embed_(nodes);
  std::vector<Var> fwd, bwd;
  if (cfg_.kind == GnnKind::kGiPHK) {
    fwd = pass_k_steps(view, pre, edges, fwd_, true);
    bwd = pass_k_steps(view, pre, edges, bwd_, false);
  } else {
    fwd = pass_sequential(view, pre, edges, fwd_, true);
    bwd = pass_sequential(view, pre, edges, bwd_, false);
  }
  return concat_cols({concat_rows(fwd), concat_rows(bwd)});
}

ScorePolicy::ScorePolicy(nn::ParamRegistry& reg, const std::string& name, int in_dim,
                         std::mt19937_64& rng)
    : score_(reg, name, {in_dim, 16, 1}, rng, nn::Activation::kRelu,
             nn::Activation::kNone) {}

ScorePolicy::Sample ScorePolicy::act(const Var& embeddings,
                                     const std::vector<int>& candidates,
                                     std::mt19937_64& rng, bool greedy) const {
  if (candidates.empty()) throw std::invalid_argument("ScorePolicy::act: no candidates");
  const Var sub = gather_rows(embeddings, candidates);
  const Var scores = score_(sub);                // k x 1
  const Var logp = log_softmax_col(scores);      // k x 1

  int idx = 0;
  if (greedy) {
    for (int i = 1; i < logp->value.rows(); ++i) {
      if (logp->value(i, 0) > logp->value(idx, 0)) idx = i;
    }
  } else {
    std::uniform_real_distribution<double> unif(0.0, 1.0);
    double u = unif(rng);
    idx = logp->value.rows() - 1;  // fallback for numeric leftovers
    for (int i = 0; i < logp->value.rows(); ++i) {
      u -= std::exp(logp->value(i, 0));
      if (u <= 0.0) {
        idx = i;
        break;
      }
    }
  }
  Sample s;
  s.choice = candidates[idx];
  s.log_prob = pick(logp, idx, 0);
  s.prob = std::exp(logp->value(idx, 0));
  return s;
}

}  // namespace giph
