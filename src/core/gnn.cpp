#include "core/gnn.hpp"

#include <algorithm>
#include <stdexcept>

namespace giph {

using nn::Var;
using nn::concat_cols;
using nn::concat_rows;
using nn::relu;

GraphEncoder::GraphEncoder(nn::ParamRegistry& reg, const GnnConfig& cfg,
                           std::mt19937_64& rng)
    : cfg_(cfg) {
  const int nd = cfg.node_dim;
  const int ed = cfg.edge_dim;
  const int eo = cfg.embed_dim;
  switch (cfg.kind) {
    case GnnKind::kGiPH:
    case GnnKind::kGiPHK: {
      // Node transform dim_n -> dim_n -> dim_o; message (dim_o + dim_e) ->
      // (dim_o + dim_e); aggregation (dim_o + dim_e) -> dim_o (Table 5).
      pre_embed_ = nn::MLP(reg, "gnn.pre", {nd, nd, eo}, rng, nn::Activation::kRelu,
                           nn::Activation::kNone);
      fwd_.message = nn::Linear(reg, "gnn.fwd.msg", eo + ed, eo + ed, rng);
      fwd_.aggregate = nn::Linear(reg, "gnn.fwd.agg", eo + ed, eo, rng);
      bwd_.message = nn::Linear(reg, "gnn.bwd.msg", eo + ed, eo + ed, rng);
      bwd_.aggregate = nn::Linear(reg, "gnn.bwd.agg", eo + ed, eo, rng);
      out_dim_ = 2 * eo;
      break;
    }
    case GnnKind::kGiPHNE: {
      cfg_.edge_dim = 0;  // edge features are folded into the node features
      pre_embed_ = nn::MLP(reg, "gnn.pre", {nd, nd, eo}, rng, nn::Activation::kRelu,
                           nn::Activation::kNone);
      fwd_.message = nn::Linear(reg, "gnn.fwd.msg", eo, eo, rng);
      fwd_.aggregate = nn::Linear(reg, "gnn.fwd.agg", eo, eo, rng);
      bwd_.message = nn::Linear(reg, "gnn.bwd.msg", eo, eo, rng);
      bwd_.aggregate = nn::Linear(reg, "gnn.bwd.agg", eo, eo, rng);
      out_dim_ = 2 * eo;
      break;
    }
    case GnnKind::kGraphSAGE: {
      // Node transform dim_n -> 16, then k layers [h_u || mean h_par] -> 16,
      // last layer -> dim_o (Table 5 uses dim_o = 10 with k = 3).
      constexpr int kHidden = 16;
      sage_transform_ = nn::Linear(reg, "gnn.sage.t", nd, kHidden, rng);
      for (int l = 0; l < cfg.k_steps; ++l) {
        const int out = l + 1 == cfg.k_steps ? 2 * eo : kHidden;
        sage_layers_.emplace_back(reg, "gnn.sage.l" + std::to_string(l), 2 * kHidden,
                                  out, rng);
      }
      out_dim_ = 2 * eo;
      break;
    }
    case GnnKind::kNone:
      out_dim_ = nd;
      break;
  }
}

std::vector<Var> GraphEncoder::pass_sequential(const GraphView& view, const Var& pre,
                                               const Var& edge_feats,
                                               const Direction& dir, bool forward) const {
  const bool use_edges = cfg_.edge_dim > 0;
  std::vector<Var> emb(view.num_nodes);

  // Group nodes into dependency levels of the processing direction: every
  // message source of level L was finalized in a level < L, so one
  // matrix-matrix matmul per level replaces a matrix-vector op per node.
  // matmul, Linear, relu and the segment mean are all row-independent, which
  // keeps each node's row bitwise identical to the per-node pass.
  std::vector<int> level(view.num_nodes, 0);
  std::vector<std::vector<int>> buckets;
  auto assign_level = [&](int u) {
    const auto& incoming = forward ? view.in_edges[u] : view.out_edges[u];
    int lv = 0;
    for (int e : incoming) {
      const int v = forward ? view.edges[e].first : view.edges[e].second;
      lv = std::max(lv, level[v] + 1);
    }
    level[u] = lv;
    if (lv >= static_cast<int>(buckets.size())) buckets.resize(lv + 1);
    buckets[lv].push_back(u);
  };
  if (forward) {
    for (int u : view.topo) assign_level(u);
  } else {
    for (auto it = view.topo.rbegin(); it != view.topo.rend(); ++it) assign_level(*it);
  }

  for (const std::vector<int>& bucket : buckets) {
    std::vector<int> inc_nodes;   // bucket members that receive messages
    std::vector<Var> src_rows;    // their source rows, grouped per node
    std::vector<int> eidx;        // matching edge ids
    std::vector<int> offsets{0};  // group boundaries into src_rows
    for (int u : bucket) {
      const auto& incoming = forward ? view.in_edges[u] : view.out_edges[u];
      if (incoming.empty()) {
        emb[u] = row(pre, u);
        continue;
      }
      for (int e : incoming) {
        src_rows.push_back(emb[forward ? view.edges[e].first : view.edges[e].second]);
        eidx.push_back(e);
      }
      inc_nodes.push_back(u);
      offsets.push_back(static_cast<int>(src_rows.size()));
    }
    if (inc_nodes.empty()) continue;
    Var stacked = concat_rows(src_rows);
    if (use_edges) stacked = concat_cols({stacked, gather_rows(edge_feats, eidx)});
    const Var aggregated =
        segment_mean_rows(relu(dir.message(stacked)), std::move(offsets));
    const Var nxt = add(relu(dir.aggregate(aggregated)), gather_rows(pre, inc_nodes));
    for (int i = 0; i < static_cast<int>(inc_nodes.size()); ++i) {
      emb[inc_nodes[i]] = row(nxt, i);
    }
  }
  return emb;
}

Var GraphEncoder::pass_k_steps(const GraphView& view, const Var& pre,
                               const Var& edge_feats, const Direction& dir,
                               bool forward) const {
  const bool use_edges = cfg_.edge_dim > 0;

  // The synchronous update reads only the previous step's embeddings, so the
  // gather plan is static: for every node with incoming edges (ascending
  // node id), its message sources and edge ids in incoming-list order.
  std::vector<int> inc_nodes, srcs, eidx;
  std::vector<int> offsets{0};
  for (int u = 0; u < view.num_nodes; ++u) {
    const auto& incoming = forward ? view.in_edges[u] : view.out_edges[u];
    if (incoming.empty()) continue;
    for (int e : incoming) {
      srcs.push_back(forward ? view.edges[e].first : view.edges[e].second);
      eidx.push_back(e);
    }
    inc_nodes.push_back(u);
    offsets.push_back(static_cast<int>(srcs.size()));
  }
  // No messages anywhere: every node keeps its self row at every step.
  if (inc_nodes.empty() || cfg_.k_steps <= 0) return pre;

  // scatter[u]: row of concat_rows({nxt, pre}) holding u's updated
  // embedding — its slot in nxt when it receives messages, its pre row (the
  // per-step "self" of message-less nodes) otherwise.
  std::vector<int> scatter(view.num_nodes);
  {
    std::vector<int> pos(view.num_nodes, -1);
    for (int i = 0; i < static_cast<int>(inc_nodes.size()); ++i) pos[inc_nodes[i]] = i;
    for (int u = 0; u < view.num_nodes; ++u) {
      scatter[u] = pos[u] >= 0 ? pos[u] : static_cast<int>(inc_nodes.size()) + u;
    }
  }

  Var emb = pre;
  for (int step = 0; step < cfg_.k_steps; ++step) {
    Var stacked = gather_rows(emb, srcs);
    if (use_edges) stacked = concat_cols({stacked, gather_rows(edge_feats, eidx)});
    const Var aggregated = segment_mean_rows(relu(dir.message(stacked)), offsets);
    const Var nxt = add(relu(dir.aggregate(aggregated)), gather_rows(pre, inc_nodes));
    emb = gather_rows(concat_rows({nxt, pre}), scatter);
  }
  return emb;
}

Var GraphEncoder::encode(const GraphView& view, const nn::Matrix& node_features,
                         const nn::Matrix& edge_features) const {
  if (node_features.rows() != view.num_nodes || node_features.cols() != cfg_.node_dim) {
    throw std::invalid_argument("GraphEncoder::encode: node feature shape mismatch");
  }
  const Var nodes = nn::constant(node_features);
  if (cfg_.kind == GnnKind::kNone) return nodes;

  const Var edges = nn::constant(edge_features);

  if (cfg_.kind == GnnKind::kGraphSAGE) {
    // One gather plan over all nodes: an empty group mean-pools to a zero
    // row, matching the old explicit zeros for parentless nodes, and a lone
    // parent copies through unscaled (identity_single) as before.
    std::vector<int> srcs;
    std::vector<int> offsets{0};
    for (int u = 0; u < view.num_nodes; ++u) {
      for (int e : view.in_edges[u]) srcs.push_back(view.edges[e].first);
      offsets.push_back(static_cast<int>(srcs.size()));
    }
    Var h = relu(sage_transform_(nodes));
    for (const nn::Linear& layer : sage_layers_) {
      const Var neigh = segment_mean_rows(gather_rows(h, srcs), offsets,
                                          /*identity_single=*/true);
      h = relu(layer(concat_cols({h, neigh})));
    }
    return h;
  }

  const Var pre = pre_embed_(nodes);
  if (cfg_.kind == GnnKind::kGiPHK) {
    return concat_cols({pass_k_steps(view, pre, edges, fwd_, true),
                        pass_k_steps(view, pre, edges, bwd_, false)});
  }
  const std::vector<Var> fwd = pass_sequential(view, pre, edges, fwd_, true);
  const std::vector<Var> bwd = pass_sequential(view, pre, edges, bwd_, false);
  return concat_cols({concat_rows(fwd), concat_rows(bwd)});
}

ScorePolicy::ScorePolicy(nn::ParamRegistry& reg, const std::string& name, int in_dim,
                         std::mt19937_64& rng)
    : score_(reg, name, {in_dim, 16, 1}, rng, nn::Activation::kRelu,
             nn::Activation::kNone) {}

ScorePolicy::Sample ScorePolicy::act(const Var& embeddings,
                                     const std::vector<int>& candidates,
                                     std::mt19937_64& rng, bool greedy) const {
  if (candidates.empty()) throw std::invalid_argument("ScorePolicy::act: no candidates");
  const Var sub = gather_rows(embeddings, candidates);
  const Var scores = score_(sub);                // k x 1
  const Var logp = log_softmax_col(scores);      // k x 1

  int idx = 0;
  if (greedy) {
    for (int i = 1; i < logp->value.rows(); ++i) {
      if (logp->value(i, 0) > logp->value(idx, 0)) idx = i;
    }
  } else {
    std::uniform_real_distribution<double> unif(0.0, 1.0);
    double u = unif(rng);
    idx = logp->value.rows() - 1;  // fallback for numeric leftovers
    for (int i = 0; i < logp->value.rows(); ++i) {
      u -= std::exp(logp->value(i, 0));
      if (u <= 0.0) {
        idx = i;
        break;
      }
    }
  }
  Sample s;
  s.choice = candidates[idx];
  s.log_prob = pick(logp, idx, 0);
  s.prob = std::exp(logp->value(idx, 0));
  return s;
}

}  // namespace giph
