#pragma once

#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/search_env.hpp"
#include "nn/autograd.hpp"

namespace giph {

/// One decision of a search policy: the action plus (for learned policies)
/// the differentiable log-probability used by REINFORCE. Heuristic policies
/// leave log_prob null. A policy that replaces the entire placement per step
/// (the paper's random-sampling baseline) sets `full` instead of `action`.
struct ActionDecision {
  SearchAction action;
  nn::Var log_prob;
  std::optional<Placement> full;
  /// Optional state-value estimate V(s_t) from a critic head (actor-critic
  /// extension); when every step of an episode provides one, the REINFORCE
  /// trainer uses it as the baseline and adds a value-regression loss.
  nn::Var value;
};

/// Interface shared by all search-based placement policies: GiPH, its
/// ablation variants, GiPH-task-EFT, Random-task-EFT, random sampling, and
/// Placeto. A policy inspects the environment's current state and proposes
/// the next relocation; the caller applies it.
class SearchPolicy {
 public:
  virtual ~SearchPolicy() = default;

  virtual ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                                bool greedy) = 0;

  /// Trainable parameters (empty for heuristics).
  virtual std::vector<nn::Var> parameters() { return {}; }

  /// A fresh policy of the same architecture for a parallel rollout worker,
  /// or null when the policy does not support cloning. The clone carries its
  /// own parameter leaves and per-episode state, so concurrent rollouts never
  /// share mutable buffers; the trainer broadcasts the master parameter
  /// *values* into each clone (nn::copy_values) before every batch, which is
  /// why parameters() of a clone must enumerate parameters in the same order
  /// as the original. Policies that return null are trained on the single
  /// master instance (the sequential path) regardless of the requested
  /// worker count.
  virtual std::unique_ptr<SearchPolicy> clone_for_rollout() const { return nullptr; }

  /// Resets per-episode internal state (e.g. Placeto's traversal cursor).
  virtual void begin_episode() {}

  /// Natural episode length for graph g, or -1 for "no limit" (use the
  /// caller's default, 2|V| in the paper). Placeto returns |V|: it visits
  /// each node exactly once and must restart afterwards.
  virtual int episode_limit(const TaskGraph& g) const {
    (void)g;
    return -1;
  }

  virtual std::string name() const = 0;
};

}  // namespace giph
