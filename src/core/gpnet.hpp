#pragma once

#include <utility>
#include <vector>

#include "graph/placement.hpp"

namespace giph {

/// Structure-only view of a directed acyclic graph, shared by the GNN
/// encoders: the gpNet H, the raw task graph G (used by GiPH-task-EFT and
/// Placeto), or any other DAG.
struct GraphView {
  int num_nodes = 0;
  std::vector<std::pair<int, int>> edges;    ///< (src, dst) node ids
  std::vector<std::vector<int>> in_edges;    ///< per node: incoming edge ids
  std::vector<std::vector<int>> out_edges;   ///< per node: outgoing edge ids
  std::vector<int> topo;                     ///< topological node order

  int add_node();
  int add_edge(int src, int dst);
  /// Computes `topo` with Kahn's algorithm; throws std::logic_error on cycles.
  void finalize();
};

/// Builds a GraphView mirroring a task graph (edge ids match g's edge ids).
GraphView graph_view_of(const TaskGraph& g);

/// The gpNet representation H of a placement P = (G, N, M) (Section 4.2.1,
/// Algorithm B.1). Node u = (task, device) is one feasible placement option
/// and simultaneously one MDP action; pivots are the options currently chosen
/// by M. Edges connect options of dependent tasks when at least one endpoint
/// is a pivot.
struct GpNet {
  GraphView view;
  std::vector<int> node_task;    ///< per gpNet node: task id v_i
  std::vector<int> node_device;  ///< per gpNet node: device id d_j
  std::vector<bool> is_pivot;    ///< per gpNet node: in V_{H,P}?
  std::vector<std::vector<int>> options;  ///< per task: its option node ids O_i
  std::vector<int> pivot_of_task;         ///< per task: its pivot node id
  std::vector<int> edge_task_edge;        ///< per gpNet edge: originating edge id in G

  int num_nodes() const noexcept { return view.num_nodes; }
  int num_edges() const noexcept { return static_cast<int>(view.edges.size()); }
};

/// Constructs the gpNet for (g, n, placement) with the given per-task
/// feasible device sets. Node counts satisfy |V_H| = sum_i |D_i| and
/// |E_H| = sum_i |D_i| |E_i| - |E|.
GpNet build_gpnet(const TaskGraph& g, const DeviceNetwork& n, const Placement& placement,
                  const std::vector<std::vector<int>>& feasible);

/// Sparse gpNet: per task, only the current pivot plus the k most promising
/// alternative devices become option nodes — promise ranked by ascending
/// earliest start time from `est` (a row-major num_tasks x num_devices table,
/// e.g. EstSweepWorkspace::est after est_sweep), ties broken by position in
/// the feasible list. Selected options are emitted in feasible-list order, so
/// when k >= |D_i| - 1 for every task (in particular whenever k >= D) the
/// construction is node-for-node, edge-for-edge identical to build_gpnet —
/// the dense generator is the k = infinity special case, not a separate code
/// path to keep in sync. With small k the node count drops from sum |D_i| to
/// at most V * (k + 1), the edge count correspondingly, which is what makes
/// 1k+-task graphs on 100+ devices tractable (see DESIGN.md "Hierarchical
/// placement"). Throws std::invalid_argument on k < 0 or an est table of the
/// wrong size.
GpNet build_gpnet_topk(const TaskGraph& g, const DeviceNetwork& n,
                       const Placement& placement,
                       const std::vector<std::vector<int>>& feasible, int k,
                       const std::vector<double>& est);

}  // namespace giph
