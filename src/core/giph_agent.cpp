#include "core/giph_agent.hpp"

#include <stdexcept>

#include "heft/heft.hpp"

namespace giph {

bool uses_merged_edge_features(GnnKind kind) {
  return kind == GnnKind::kGiPHNE || kind == GnnKind::kGraphSAGE || kind == GnnKind::kNone;
}

GiPHAgent::GiPHAgent(const GiPHOptions& options) : options_(options) {
  std::mt19937_64 rng(options.seed);
  GnnConfig cfg;
  cfg.kind = options.gnn;
  cfg.embed_dim = options.embed_dim;
  cfg.k_steps = options.k_steps;
  cfg.node_dim = uses_merged_edge_features(options.gnn)
                     ? kNodeFeatureDim + kEdgeFeatureDim
                     : kNodeFeatureDim;
  cfg.edge_dim = uses_merged_edge_features(options.gnn) ? 0 : kEdgeFeatureDim;
  encoder_ = std::make_unique<GraphEncoder>(reg_, cfg, rng);
  policy_ = std::make_unique<ScorePolicy>(reg_, "policy", encoder_->out_dim(), rng);
  if (options.use_critic) {
    critic_ = std::make_unique<nn::MLP>(
        reg_, "critic", std::vector<int>{encoder_->out_dim(), 16, 1}, rng,
        nn::Activation::kRelu, nn::Activation::kNone);
  }
}

std::unique_ptr<SearchPolicy> GiPHAgent::clone_for_rollout() const {
  auto clone = std::make_unique<GiPHAgent>(options_);
  nn::copy_values(reg_.params(), clone->reg_.params());
  return clone;
}

std::string GiPHAgent::name() const {
  if (!options_.use_gpnet) return "GiPH-task-eft";
  switch (options_.gnn) {
    case GnnKind::kGiPH:
      return options_.include_potential ? "GiPH" : "GiPH(no-potential)";
    case GnnKind::kGiPHK: return "GiPH-" + std::to_string(options_.k_steps);
    case GnnKind::kGiPHNE: return "GiPH-NE";
    case GnnKind::kGraphSAGE: return "GraphSAGE-NE";
    case GnnKind::kNone: return "GiPH-NE-Pol";
  }
  return "GiPH";
}

ActionDecision GiPHAgent::decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                                 bool greedy) {
  return options_.use_gpnet ? decide_gpnet(env, rng, greedy)
                            : decide_task_eft(env, rng, greedy);
}

const FeatureScales& GiPHAgent::scales_for(const PlacementSearchEnv& env) {
  // Also invalidate on an instance change (rebase swaps the network without a
  // begin_episode), so the cache can never serve stale scales.
  if (scales_graph_ != &env.graph() || scales_net_ != &env.network()) {
    scales_ = compute_feature_scales(env.graph(), env.network(), env.latency());
    scales_graph_ = &env.graph();
    scales_net_ = &env.network();
  }
  return scales_;
}

ActionDecision GiPHAgent::decide_gpnet(PlacementSearchEnv& env, std::mt19937_64& rng,
                                       bool greedy) {
  // Sparse mode runs the EST sweep once and shares it between candidate
  // selection and the potential feature; dense mode leaves feature
  // construction to sweep for itself.
  thread_local EstSweepWorkspace sweep;
  const EstSweepWorkspace* shared = nullptr;
  GpNet net;
  if (options_.gpnet_topk > 0) {
    est_sweep(env.schedule(), env.graph(), env.network(), env.placement(),
              env.latency(), sweep);
    net = build_gpnet_topk(env.graph(), env.network(), env.placement(), env.feasible(),
                           options_.gpnet_topk, sweep.est);
    shared = &sweep;
  } else {
    net = build_gpnet(env.graph(), env.network(), env.placement(), env.feasible());
  }
  const GpNetFeatures feats =
      build_gpnet_features(net, env.graph(), env.network(), env.placement(),
                           env.latency(), env.schedule(), scales_for(env),
                           options_.include_potential, &env.schedule_index(), shared);

  std::vector<int> candidates;
  candidates.reserve(net.num_nodes());
  auto collect = [&](bool mask_noop, bool mask_repeat) {
    candidates.clear();
    for (int u = 0; u < net.num_nodes(); ++u) {
      if (mask_noop && net.is_pivot[u]) continue;
      if (mask_repeat && net.node_task[u] == env.last_moved_task()) continue;
      candidates.push_back(u);
    }
  };
  collect(options_.mask_noop, options_.mask_repeat);
  if (candidates.empty()) collect(options_.mask_noop, false);
  if (candidates.empty()) collect(false, false);

  nn::Var embeddings;
  if (uses_merged_edge_features(options_.gnn)) {
    embeddings = encoder_->encode(net.view, append_mean_out_edge_features(net, feats),
                                  nn::Matrix());
  } else {
    embeddings = encoder_->encode(net.view, feats.node, feats.edge);
  }
  const ScorePolicy::Sample s = policy_->act(embeddings, candidates, rng, greedy);
  ActionDecision d;
  d.action = SearchAction{net.node_task[s.choice], net.node_device[s.choice]};
  d.log_prob = s.log_prob;
  if (critic_) d.value = (*critic_)(nn::mean_rows(embeddings));
  return d;
}

ActionDecision GiPHAgent::decide_task_eft(PlacementSearchEnv& env, std::mt19937_64& rng,
                                          bool greedy) {
  const TaskGraph& g = env.graph();
  const GraphView view = graph_view_of(g);
  const TaskGraphFeatures feats = build_task_graph_features(
      g, env.network(), env.placement(), env.latency(), env.schedule(),
      env.feasible(), scales_for(env), &env.schedule_index());

  std::vector<int> candidates;
  for (int v = 0; v < g.num_tasks(); ++v) {
    if (options_.mask_repeat && v == env.last_moved_task()) continue;
    candidates.push_back(v);
  }
  if (candidates.empty()) {
    for (int v = 0; v < g.num_tasks(); ++v) candidates.push_back(v);
  }

  nn::Var embeddings;
  if (uses_merged_edge_features(options_.gnn)) {
    // Merge edge features into node features exactly as for gpNets.
    nn::Matrix merged(g.num_tasks(), kNodeFeatureDim + kEdgeFeatureDim);
    for (int v = 0; v < g.num_tasks(); ++v) {
      for (int j = 0; j < kNodeFeatureDim; ++j) merged(v, j) = feats.node(v, j);
      const auto oes = g.out_edges(v);
      for (int e : oes) {
        for (int j = 0; j < kEdgeFeatureDim; ++j) {
          merged(v, kNodeFeatureDim + j) += feats.edge(e, j);
        }
      }
      if (!oes.empty()) {
        for (int j = 0; j < kEdgeFeatureDim; ++j) {
          merged(v, kNodeFeatureDim + j) /= static_cast<double>(oes.size());
        }
      }
    }
    embeddings = encoder_->encode(view, merged, nn::Matrix());
  } else {
    embeddings = encoder_->encode(view, feats.node, feats.edge);
  }
  const ScorePolicy::Sample s = policy_->act(embeddings, candidates, rng, greedy);
  const int task = s.choice;
  const int device = eft_select_device(g, env.network(), env.placement(), env.latency(),
                                       env.schedule(), env.schedule_index(), task);
  if (device < 0) throw std::logic_error("GiPHAgent: no feasible EFT device");
  ActionDecision d;
  d.action = SearchAction{task, device};
  d.log_prob = s.log_prob;
  if (critic_) d.value = (*critic_)(nn::mean_rows(embeddings));
  return d;
}

}  // namespace giph
