#include "core/hierarchical.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "heft/heft.hpp"
#include "sim/metrics.hpp"

namespace giph {

HierarchicalPlacer::HierarchicalPlacer(const TaskGraph& g, const DeviceNetwork& n,
                                       const LatencyModel& lat,
                                       const HierarchicalOptions& opt)
    : g_(&g), n_(&n), lat_(&lat), opt_(opt) {
  if (opt.coarse_steps_factor < 0) {
    throw std::invalid_argument("HierarchicalPlacer: coarse_steps_factor must be >= 0");
  }
  if (opt.refine_rounds < 0) {
    throw std::invalid_argument("HierarchicalPlacer: refine_rounds must be >= 0");
  }
  if (opt.refine_topk < 1) {
    throw std::invalid_argument("HierarchicalPlacer: refine_topk must be >= 1");
  }
  part_ = partition_tasks(g, n, opt.partition);
  norm_ = g.num_tasks() > 0 ? slr_denominator(g, n, lat) : 1.0;
}

Placement HierarchicalPlacer::place_clusters(SearchPolicy& policy, std::mt19937_64& rng,
                                             double* coarse_objective) {
  if (part_.num_clusters() == 0) {
    if (coarse_objective) *coarse_objective = 0.0;
    return Placement(0);
  }
  const HeftResult warm = heft_schedule(part_.coarse, *n_, *lat_);
  const double cnorm = slr_denominator(part_.coarse, *n_, *lat_);
  PlacementSearchEnv env(part_.coarse, *n_, *lat_, makespan_objective(*lat_),
                         warm.placement, cnorm);
  const int steps = opt_.coarse_steps_factor * part_.num_clusters();
  if (steps > 0) run_search(policy, env, steps, rng, opt_.coarse_greedy);
  if (coarse_objective) *coarse_objective = env.best_objective();
  return env.best_placement();
}

double HierarchicalPlacer::refine(Placement& fine, HierarchicalStats* stats) {
  PlacementSearchEnv env(*g_, *n_, *lat_, makespan_objective(*lat_), fine, norm_);
  if (stats) stats->expanded_objective = env.objective();
  if (!opt_.refine || g_->num_tasks() == 0) {
    if (stats) stats->refined_objective = env.objective();
    return env.objective();
  }

  thread_local EstSweepWorkspace sweep;
  const std::vector<double>& computes = compute_sweep(*g_, *n_, *lat_, sweep);
  const int nd = n_->num_devices();
  std::vector<std::pair<double, int>> cand;
  for (int round = 0; round < opt_.refine_rounds; ++round) {
    bool any_kept = false;
    for (int c = 0; c < part_.num_clusters(); ++c) {
      const std::vector<int>& members = part_.members[c];
      // One subset sweep per cluster ranks this cluster's candidate devices;
      // it may go stale after a kept move, but staleness only affects the
      // candidate ORDER — every acceptance decision below uses the exact
      // objective from apply().
      est_sweep_subset(env.schedule(), *g_, *n_, env.placement(), *lat_, members, sweep);
      for (int v : members) {
        const int cur = env.placement().device_of(v);
        const double* row = sweep.est.data() + static_cast<std::size_t>(v) * nd;
        const double* wrow = computes.data() + static_cast<std::size_t>(v) * nd;
        cand.clear();
        for (int d : env.feasible()[v]) {
          if (d != cur) cand.emplace_back(row[d] + wrow[d], d);
        }
        const int k = std::min<int>(opt_.refine_topk, static_cast<int>(cand.size()));
        std::partial_sort(cand.begin(), cand.begin() + k, cand.end());
        for (int i = 0; i < k; ++i) {
          const double prev = env.objective();
          env.apply(SearchAction{v, cand[i].second});
          if (stats) ++stats->refine_moves_tried;
          if (env.objective() < prev) {
            if (stats) ++stats->refine_moves_kept;
            any_kept = true;
            break;
          }
          // Reverting restores the exact previous placement; the simulation
          // is a pure function of it, so the objective returns to `prev`
          // bitwise and the incumbent never worsens.
          env.apply(SearchAction{v, cur});
        }
      }
    }
    if (!any_kept) break;
  }
  fine = env.placement();
  if (stats) stats->refined_objective = env.objective();
  return env.objective();
}

Placement HierarchicalPlacer::place(SearchPolicy& policy, std::mt19937_64& rng,
                                    HierarchicalStats* stats) {
  HierarchicalStats s;
  s.num_clusters = part_.num_clusters();
  if (g_->num_tasks() == 0) {
    if (stats) *stats = s;
    return Placement(0);
  }
  const Placement coarse = place_clusters(policy, rng, &s.coarse_objective);
  Placement fine = expand(coarse);
  refine(fine, &s);
  if (stats) *stats = s;
  return fine;
}

double HierarchicalPlacer::objective_of(const Placement& fine) const {
  if (g_->num_tasks() == 0) return 0.0;
  // Same guard as PlacementSearchEnv: non-positive normalizers fall back to 1.
  const double norm = norm_ > 0.0 ? norm_ : 1.0;
  return evaluate_objective(makespan_objective(*lat_), *g_, *n_, fine, *lat_) / norm;
}

}  // namespace giph
