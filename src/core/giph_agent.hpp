#pragma once

#include <memory>

#include "core/features.hpp"
#include "core/gnn.hpp"
#include "core/search_policy.hpp"
#include "nn/optimizer.hpp"

namespace giph {

/// Configuration of a GiPH agent and its ablation variants.
struct GiPHOptions {
  GnnKind gnn = GnnKind::kGiPH;
  int embed_dim = 5;      ///< dim_o (Table 4)
  int k_steps = 3;        ///< for kGiPHK / kGraphSAGE
  bool use_gpnet = true;  ///< false = GiPH-task-EFT (RL task selection + EFT device)
  bool include_potential = true;  ///< start-time-potential node feature (Fig. 15)
  bool mask_noop = true;    ///< mask actions equal to the current placement
  bool mask_repeat = true;  ///< mask relocating the task moved in the previous step
  /// Sparse gpNet: keep only the pivot plus this many EST-ranked alternative
  /// devices per task (build_gpnet_topk). 0 = dense (all feasible pairs);
  /// any value >= num_devices is bitwise-identical to dense. The scale tier's
  /// knob for 1k+-task graphs on 100+ devices.
  int gpnet_topk = 0;
  /// Actor-critic extension: adds a value head over the mean graph embedding;
  /// the trainer then uses V(s_t) as the policy-gradient baseline.
  bool use_critic = false;
  std::uint64_t seed = 1;   ///< parameter initialization seed
};

/// The GiPH placement agent (Section 4.2): gpNet representation -> GNN
/// embedding -> per-action score policy. With use_gpnet = false it degrades
/// to GiPH-task-EFT: the GNN runs over the raw task graph, the policy picks a
/// task, and the device is chosen by earliest-finish-time.
class GiPHAgent final : public SearchPolicy {
 public:
  explicit GiPHAgent(const GiPHOptions& options);

  ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                        bool greedy) override;
  std::vector<nn::Var> parameters() override { return reg_.params(); }
  void begin_episode() override { scales_graph_ = scales_net_ = nullptr; }
  /// Same-architecture clone with private parameter leaves, feature-scale
  /// cache, and network modules; current parameter values are copied over.
  /// Registration order matches the original, so the trainer can broadcast
  /// updated values index-by-index.
  std::unique_ptr<SearchPolicy> clone_for_rollout() const override;
  std::string name() const override;

  nn::ParamRegistry& registry() noexcept { return reg_; }
  const nn::ParamRegistry& registry() const noexcept { return reg_; }
  const GiPHOptions& options() const noexcept { return options_; }

  void save(const std::string& path) const { reg_.save(path); }
  void load(const std::string& path) { reg_.load(path); }

 private:
  ActionDecision decide_gpnet(PlacementSearchEnv& env, std::mt19937_64& rng, bool greedy);
  ActionDecision decide_task_eft(PlacementSearchEnv& env, std::mt19937_64& rng,
                                 bool greedy);
  const FeatureScales& scales_for(const PlacementSearchEnv& env);

  GiPHOptions options_;
  /// Per-episode cache: scales depend only on (G, N, lat), which are fixed
  /// within an episode; begin_episode() and an instance change invalidate.
  FeatureScales scales_;
  const void* scales_graph_ = nullptr;
  const void* scales_net_ = nullptr;
  nn::ParamRegistry reg_;
  std::unique_ptr<GraphEncoder> encoder_;
  std::unique_ptr<ScorePolicy> policy_;
  std::unique_ptr<nn::MLP> critic_;  ///< optional value head (use_critic)
};

/// True when this GNN kind consumes the 8-dim node features with appended
/// mean out-edge features instead of separate edge features.
bool uses_merged_edge_features(GnnKind kind);

}  // namespace giph
