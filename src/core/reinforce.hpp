#pragma once

#include <functional>

#include "core/search_policy.hpp"
#include "nn/optimizer.hpp"

namespace giph {

/// One training problem instance; pointers must outlive the call.
struct ProblemInstance {
  const TaskGraph* graph = nullptr;
  const DeviceNetwork* network = nullptr;
};

/// Draws a (G, N) pair per episode from the training set.
using InstanceSampler = std::function<ProblemInstance(std::mt19937_64&)>;

/// Builds the per-episode objective for an instance (rng available for noisy
/// objectives). Null = makespan (with TrainOptions::noise applied). The
/// objective is schedule-aware: it receives the environment's noise-free
/// schedule per evaluation; wrap a legacy (g, n, p) functor with
/// schedule_objective() if needed.
using ObjectiveFactory = std::function<ScheduleObjective(
    const TaskGraph&, const DeviceNetwork&, std::mt19937_64&)>;

/// Per-instance normalizer for the objective (rewards become scale-free
/// across instances). Null = the SLR denominator.
using NormalizerFn = std::function<double(const TaskGraph&, const DeviceNetwork&)>;

/// REINFORCE training options (Appendix B.7). The objective per episode is
/// the SLR (makespan normalized by the instance's lower bound), optionally
/// with simulation noise.
struct TrainOptions {
  int episodes = 200;
  int episode_len_factor = 2;  ///< T = factor * |V| unless the policy sets a limit
  double gamma = 0.97;
  double lr = 0.01;
  /// Final learning rate; when < lr, the rate decays linearly over the
  /// episodes (stabilizes late REINFORCE training). Default: no decay.
  double lr_final = -1.0;
  double grad_clip = 10.0;
  double noise = 0.0;  ///< multiplicative simulation noise during training
  /// Scale step t's gradient by gamma^t (the strict discounted policy
  /// gradient, as in the paper's Appendix B.7 update). Disabling uses the
  /// common undiscounted-state-distribution variant.
  bool discount_state_weight = true;
  /// Standardize advantages within each episode (variance reduction).
  bool normalize_advantages = false;
  /// Accumulate gradients over this many episodes before each optimizer step
  /// (variance reduction; 1 = update every episode as in the paper).
  int batch_episodes = 1;
  /// Number of parallel rollout workers. With > 1, the episodes of each
  /// batch_episodes group run concurrently, one per worker, each on a private
  /// policy clone (shared parameter values, per-worker activation/gradient
  /// buffers), environment, workspace, and RNG; per-episode gradients are
  /// reduced into the optimizer in episode order, so losses, checkpoints,
  /// and final parameters are bitwise identical at any worker count.
  /// Requires the policy to support clone_for_rollout() (non-cloneable
  /// policies are trained sequentially regardless) and the sampler/factories
  /// to be safe to call concurrently. Capped at batch_episodes: with
  /// batch_episodes == 1 every update depends on the previous one, so there
  /// is nothing to parallelize.
  int rollout_workers = 1;
  /// Weight of the critic's value-regression loss when the policy provides
  /// state-value estimates (actor-critic extension).
  double value_coef = 0.25;
  std::uint64_t seed = 7;
  /// Crash-safe checkpointing: every `checkpoint_every` episodes the trainer
  /// writes parameters, optimizer moments, RNG state, and stats so far to
  /// `checkpoint_path` - atomically, via `path.tmp` + rename, so a crash
  /// mid-write never corrupts the previous checkpoint. 0 disables.
  int checkpoint_every = 0;
  std::string checkpoint_path;
  /// When true and `checkpoint_path` exists, training resumes from it and
  /// reproduces the exact trajectory an uninterrupted run would have had
  /// (same per-episode losses, same final parameters).
  bool resume = false;
  /// Called after each episode with (episode index, stats so far); optional.
  std::function<void(int)> on_episode;
  /// Custom training objective (e.g. total cost, energy); null = makespan.
  ObjectiveFactory objective_factory;
  /// Custom objective normalizer; null = SLR denominator.
  NormalizerFn normalizer;
};

struct TrainStats {
  std::vector<double> episode_initial;  ///< objective of the initial placement
  std::vector<double> episode_final;    ///< objective after the last step
  std::vector<double> episode_best;     ///< best objective within the episode
};

/// Rejects out-of-range training options up front with a clear error
/// (std::invalid_argument): rollout_workers and batch_episodes must be >= 1,
/// checkpoint_every >= 0. Called by train_reinforce; exposed for callers
/// that validate configuration before committing to a long run.
void validate_train_options(const TrainOptions& opt);

/// Trains `policy` with the policy-gradient method REINFORCE: per-episode
/// Monte-Carlo returns with discount gamma and a per-step baseline equal to
/// the average reward observed before that step in the episode. Non-learned
/// policies (no parameters) are simply rolled out, which measures their
/// search behavior under identical conditions.
///
/// Episode e draws all its randomness (instance, objective noise, initial
/// placement, action sampling) from a private RNG seeded with a splitmix64
/// mix of (seed + e) — mixed so adjacent episodes get decorrelated streams —
/// and
/// per-episode gradients are reduced into the optimizer in episode order, so
/// the trajectory is a pure function of the options — independent of the
/// rollout worker count and resumable mid-batch from a checkpoint.
TrainStats train_reinforce(SearchPolicy& policy, const LatencyModel& lat,
                           const InstanceSampler& sampler, const TrainOptions& opt);

/// Best-so-far objective trace of a single search run.
struct SearchTrace {
  double initial = 0.0;
  std::vector<double> best_so_far;  ///< after each step (size = steps)
  Placement best_placement;
  std::vector<int> move_counts;  ///< per task: how often it was relocated
};

/// Runs `policy` on `env` for `steps` steps, restarting the search (reset to
/// the initial placement) whenever the policy's episode_limit is reached,
/// e.g. every |V| steps for Placeto.
SearchTrace run_search(SearchPolicy& policy, PlacementSearchEnv& env, int steps,
                       std::mt19937_64& rng, bool greedy = false);

/// Predicate consulted between search steps by the anytime variant below;
/// returning true ends the search immediately with best-so-far results.
using SearchStop = std::function<bool()>;

/// Anytime variant of run_search — the serving deadline seam. `stop` is
/// evaluated before every step; when it fires the search returns its
/// best-so-far trace immediately (never blocking longer than one policy step
/// past the stop signal) and `*stopped_early` (optional) is set. Determinism
/// contract, enforced by tests: with a stop that never fires the trace is
/// bitwise identical to run_search(policy, env, steps, ...), and a stop that
/// fires after exactly k evaluations is bitwise identical to
/// run_search(policy, env, k, ...) — stopping only truncates, it never
/// perturbs the steps already taken.
SearchTrace run_search_anytime(SearchPolicy& policy, PlacementSearchEnv& env, int steps,
                               std::mt19937_64& rng, bool greedy, const SearchStop& stop,
                               bool* stopped_early = nullptr);

}  // namespace giph
