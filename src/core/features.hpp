#pragma once

#include "core/gpnet.hpp"
#include "nn/matrix.hpp"
#include "sim/schedule_index.hpp"
#include "sim/simulator.hpp"

namespace giph {

/// Per-instance normalization scales: gpNet features are divided by these so
/// the policy sees dimensionless inputs and generalizes across device
/// networks with different absolute speeds/bandwidths (Section 4.2.1 requires
/// a representation valid for arbitrary (G, N)).
struct FeatureScales {
  double compute = 1.0;  ///< mean task compute requirement
  double speed = 1.0;    ///< mean device speed
  double w = 1.0;        ///< mean compute time over feasible (task, device) pairs
  double bytes = 1.0;    ///< mean edge data volume
  double bw = 1.0;       ///< mean link bandwidth
  double dl = 1.0;       ///< mean link delay
  double c = 1.0;        ///< mean communication time over edges
};

FeatureScales compute_feature_scales(const TaskGraph& g, const DeviceNetwork& n,
                                     const LatencyModel& lat);

/// Composed gpNet features (Appendix B.7):
/// node (v_i, d_k), 4 dims: compute requirement C_i, device speed SP_k,
///   expected compute time w_ik, start-time potential of v_i on d_k;
/// edge ((v_i,d_k),(v_j,d_l)), 4 dims: data volume B_ij, inverse relative
///   bandwidth of (d_k,d_l), link delay DL_kl, expected communication time.
struct GpNetFeatures {
  nn::Matrix node;  ///< |V_H| x 4
  nn::Matrix edge;  ///< |E_H| x 4
};

inline constexpr int kNodeFeatureDim = 4;
inline constexpr int kEdgeFeatureDim = 4;

/// `sched` must be the expected schedule of `placement` (it provides actual
/// start times for the start-time potential). With include_potential = false
/// the fourth node feature is zeroed (ablation of Fig. 15). When `index` is
/// non-null it must be built from (`sched`, `placement`) — e.g.
/// PlacementSearchEnv::schedule_index() — and the per-(task, device) EST
/// sweep runs on it in O(log V) per query; when null a local index is built
/// once for the call. Either way the values are exactly those of the
/// unindexed scan.
///
/// `sweep`, when non-null, must hold the result of est_sweep(sched, g, n,
/// placement, lat, *sweep); the potential feature then reads it directly
/// instead of re-running the O(V * D) sweep — the caller that already swept
/// for build_gpnet_topk shares one sweep per step. Values are identical
/// either way.
GpNetFeatures build_gpnet_features(const GpNet& net, const TaskGraph& g,
                                   const DeviceNetwork& n, const Placement& placement,
                                   const LatencyModel& lat, const Schedule& sched,
                                   const FeatureScales& scales,
                                   bool include_potential = true,
                                   const ScheduleIndex* index = nullptr,
                                   const EstSweepWorkspace* sweep = nullptr);

/// Node features with the mean of each node's outgoing edge features appended
/// (8 dims), used by the edge-feature-free variants GiPH-NE / GraphSAGE-NE /
/// GiPH-NE-Pol (Appendix B.6).
nn::Matrix append_mean_out_edge_features(const GpNet& net, const GpNetFeatures& f);

/// Per-task features over the raw task graph G for GiPH-task-EFT (which does
/// not use gpNet): current compute requirement, current device speed, current
/// compute time, and the best achievable start-time improvement over feasible
/// relocations. Edge features describe the currently placed data links.
struct TaskGraphFeatures {
  nn::Matrix node;  ///< |V| x 4
  nn::Matrix edge;  ///< |E| x 4
};

/// `index`, when non-null, must be built from (`sched`, `placement`); see
/// build_gpnet_features.
TaskGraphFeatures build_task_graph_features(const TaskGraph& g, const DeviceNetwork& n,
                                            const Placement& placement,
                                            const LatencyModel& lat, const Schedule& sched,
                                            const std::vector<std::vector<int>>& feasible,
                                            const FeatureScales& scales,
                                            const ScheduleIndex* index = nullptr);

}  // namespace giph
