#include "core/search_env.hpp"

#include <algorithm>
#include <stdexcept>

namespace giph {

PlacementSearchEnv::PlacementSearchEnv(const TaskGraph& g, const DeviceNetwork& n,
                                       const LatencyModel& lat,
                                       ScheduleObjective objective, Placement initial,
                                       double normalizer)
    : g_(&g), n_(&n), lat_(&lat) {
  reinit(g, n, std::move(objective), std::move(initial), normalizer);
}

void PlacementSearchEnv::reinit(const TaskGraph& g, const DeviceNetwork& n,
                                ScheduleObjective objective, Placement initial,
                                double normalizer) {
  if (!is_feasible(g, n, initial)) {
    throw std::invalid_argument("PlacementSearchEnv: infeasible initial placement");
  }
  g_ = &g;
  n_ = &n;
  objective_ = std::move(objective);
  normalizer_ = normalizer > 0.0 ? normalizer : 1.0;
  feasible_ = feasible_sets(g, n);
  initial_ = std::move(initial);
  current_ = initial_;
  last_moved_ = -1;
  steps_ = 0;
  refresh();
  best_ = current_;
  best_obj_ = obj_;
}

void PlacementSearchEnv::refresh() {
  // The single simulation per state transition: the objective consumes
  // sched_ instead of re-simulating, and the workspace makes the call
  // allocation-free in steady state. Recording delta_ lets the next one-task
  // move (apply) take the incremental path.
  simulate_into(*g_, *n_, current_, *lat_, ws_, sched_, {}, &delta_);
  ++sims_;
  index_dirty_ = true;
  obj_ = objective_(*g_, *n_, current_, sched_) / normalizer_;
}

double PlacementSearchEnv::apply(const SearchAction& a) {
  if (a.task < 0 || a.task >= g_->num_tasks()) {
    throw std::invalid_argument("PlacementSearchEnv::apply: bad task");
  }
  const auto& devs = feasible_[a.task];
  if (std::find(devs.begin(), devs.end(), a.device) == devs.end()) {
    throw std::invalid_argument("PlacementSearchEnv::apply: infeasible device");
  }
  const double before = obj_;
  current_.set(a.task, a.device);
  // One-task move: re-simulate incrementally against the previous schedule
  // (bitwise identical to a full refresh; swap keeps sched_ valid as the
  // delta's baseline without copying).
  std::swap(sched_, sched_prev_);
  const DeltaSimResult dr = simulate_delta(*g_, *n_, current_, a.task, *lat_, ws_,
                                           sched_prev_, delta_, sched_);
  ++sims_;
  if (dr == DeltaSimResult::kReplayed) {
    ++delta_sims_;
  } else {
    ++delta_fallbacks_;
  }
  index_dirty_ = true;
  obj_ = objective_(*g_, *n_, current_, sched_) / normalizer_;
  last_moved_ = a.task;
  ++steps_;
  if (obj_ < best_obj_) {
    best_obj_ = obj_;
    best_ = current_;
  }
  return before - obj_;
}

double PlacementSearchEnv::apply_placement(Placement p) {
  if (!is_feasible(*g_, *n_, p)) {
    throw std::invalid_argument("PlacementSearchEnv::apply_placement: infeasible");
  }
  const double before = obj_;
  current_ = std::move(p);
  refresh();
  last_moved_ = -1;
  ++steps_;
  if (obj_ < best_obj_) {
    best_obj_ = obj_;
    best_ = current_;
  }
  return before - obj_;
}

void PlacementSearchEnv::reset_to_initial() {
  current_ = initial_;
  last_moved_ = -1;
  refresh();
}

void PlacementSearchEnv::rebase(const DeviceNetwork& n, Placement p) {
  if (!is_feasible(*g_, n, p)) {
    throw std::invalid_argument("PlacementSearchEnv::rebase: infeasible placement");
  }
  n_ = &n;
  feasible_ = feasible_sets(*g_, n);
  initial_ = std::move(p);
  current_ = initial_;
  last_moved_ = -1;
  steps_ = 0;
  refresh();
  best_ = current_;
  best_obj_ = obj_;
}

}  // namespace giph
