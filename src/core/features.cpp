#include "core/features.hpp"

#include <algorithm>

namespace giph {
namespace {

constexpr double kEps = 1e-12;

double safe_div(double a, double b) { return a / std::max(b, kEps); }

}  // namespace

FeatureScales compute_feature_scales(const TaskGraph& g, const DeviceNetwork& n,
                                     const LatencyModel& lat) {
  FeatureScales s;
  const int nv = g.num_tasks();

  double compute = 0.0;
  for (int v = 0; v < nv; ++v) compute += g.task(v).compute;
  s.compute = nv > 0 ? compute / nv : 1.0;

  s.speed = n.mean_speed();
  s.bw = n.mean_bandwidth();
  s.dl = n.mean_delay();

  double w = 0.0;
  int w_count = 0;
  for (int v = 0; v < nv; ++v) {
    for (int d : feasible_devices(g, n, v)) {
      w += lat.compute_time(g, n, v, d);
      ++w_count;
    }
  }
  s.w = w_count > 0 ? w / w_count : 1.0;

  double bytes = 0.0;
  for (const DataLink& e : g.edges()) bytes += e.bytes;
  s.bytes = g.num_edges() > 0 ? bytes / g.num_edges() : 1.0;

  // Mean communication time estimated from network-wide means.
  s.c = s.dl + safe_div(s.bytes, s.bw);

  // Guard all scales against zero so divisions stay finite.
  for (double* p : {&s.compute, &s.speed, &s.w, &s.bytes, &s.bw, &s.dl, &s.c}) {
    if (*p <= 0.0) *p = 1.0;
  }
  return s;
}

GpNetFeatures build_gpnet_features(const GpNet& net, const TaskGraph& g,
                                   const DeviceNetwork& n, const Placement& placement,
                                   const LatencyModel& lat, const Schedule& sched,
                                   const FeatureScales& scales, bool include_potential,
                                   const ScheduleIndex* /*index*/,
                                   const EstSweepWorkspace* precomputed) {
  // The start-time-potential feature needs the EST of every (task, device)
  // candidate — exactly what one est_sweep batch computes, bitwise equal to
  // the per-node indexed queries it replaces (the ScheduleIndex parameter is
  // kept for API compatibility but no longer consulted). A caller that
  // already swept this step (sparse gpNet construction) passes its workspace
  // through `precomputed` and the sweep is not repeated.
  thread_local EstSweepWorkspace local_sweep;
  const int nd = n.num_devices();
  const EstSweepWorkspace* sweep = precomputed;
  if (include_potential && sweep == nullptr) {
    est_sweep(sched, g, n, placement, lat, local_sweep);
    sweep = &local_sweep;
  }
  GpNetFeatures f;
  f.node = nn::Matrix(net.num_nodes(), kNodeFeatureDim);
  for (int u = 0; u < net.num_nodes(); ++u) {
    const int v = net.node_task[u];
    const int d = net.node_device[u];
    f.node(u, 0) = g.task(v).compute / scales.compute;
    f.node(u, 1) = n.device(d).speed / scales.speed;
    f.node(u, 2) = lat.compute_time(g, n, v, d) / scales.w;
    if (include_potential) {
      const double est = sweep->est[static_cast<std::size_t>(v) * nd + d];
      f.node(u, 3) = (sched.tasks[v].start - est) / scales.w;
    }
  }

  f.edge = nn::Matrix(net.num_edges(), kEdgeFeatureDim);
  for (int eh = 0; eh < net.num_edges(); ++eh) {
    const auto [u1, u2] = net.view.edges[eh];
    const int ge = net.edge_task_edge[eh];
    const int dk = net.node_device[u1];
    const int dl = net.node_device[u2];
    f.edge(eh, 0) = g.edge(ge).bytes / scales.bytes;
    // Inverse relative bandwidth: 0 for local (infinite-bandwidth) transfers.
    f.edge(eh, 1) = dk == dl ? 0.0 : scales.bw / n.bandwidth(dk, dl);
    f.edge(eh, 2) = n.delay(dk, dl) / scales.dl;
    f.edge(eh, 3) = lat.comm_time(g, n, ge, dk, dl) / scales.c;
  }
  return f;
}

nn::Matrix append_mean_out_edge_features(const GpNet& net, const GpNetFeatures& f) {
  const int nd = f.node.cols();
  const int ed = f.edge.cols();
  nn::Matrix out(net.num_nodes(), nd + ed);
  for (int u = 0; u < net.num_nodes(); ++u) {
    for (int j = 0; j < nd; ++j) out(u, j) = f.node(u, j);
    const auto& oes = net.view.out_edges[u];
    if (oes.empty()) continue;
    for (int e : oes) {
      for (int j = 0; j < ed; ++j) out(u, nd + j) += f.edge(e, j);
    }
    for (int j = 0; j < ed; ++j) out(u, nd + j) /= static_cast<double>(oes.size());
  }
  return out;
}

TaskGraphFeatures build_task_graph_features(const TaskGraph& g, const DeviceNetwork& n,
                                            const Placement& placement,
                                            const LatencyModel& lat, const Schedule& sched,
                                            const std::vector<std::vector<int>>& feasible,
                                            const FeatureScales& scales,
                                            const ScheduleIndex* /*index*/) {
  // One batched EST sweep replaces the per-(task, device) indexed queries;
  // see build_gpnet_features.
  thread_local EstSweepWorkspace sweep;
  const int nd = n.num_devices();
  est_sweep(sched, g, n, placement, lat, sweep);
  TaskGraphFeatures f;
  f.node = nn::Matrix(g.num_tasks(), 4);
  for (int v = 0; v < g.num_tasks(); ++v) {
    const int cur = placement.device_of(v);
    f.node(v, 0) = g.task(v).compute / scales.compute;
    f.node(v, 1) = n.device(cur).speed / scales.speed;
    f.node(v, 2) = lat.compute_time(g, n, v, cur) / scales.w;
    // Best start-time improvement achievable by relocating v.
    double best = 0.0;
    const double* row = sweep.est.data() + static_cast<std::size_t>(v) * nd;
    for (int d : feasible[v]) {
      best = std::max(best, sched.tasks[v].start - row[d]);
    }
    f.node(v, 3) = best / scales.w;
  }
  f.edge = nn::Matrix(g.num_edges(), 4);
  for (int e = 0; e < g.num_edges(); ++e) {
    const int dk = placement.device_of(g.edge(e).src);
    const int dl = placement.device_of(g.edge(e).dst);
    f.edge(e, 0) = g.edge(e).bytes / scales.bytes;
    f.edge(e, 1) = dk == dl ? 0.0 : scales.bw / n.bandwidth(dk, dl);
    f.edge(e, 2) = n.delay(dk, dl) / scales.dl;
    f.edge(e, 3) = lat.comm_time(g, n, e, dk, dl) / scales.c;
  }
  return f;
}

}  // namespace giph
