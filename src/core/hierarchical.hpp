#pragma once

#include <cstdint>
#include <random>

#include "core/reinforce.hpp"
#include "core/search_env.hpp"
#include "gen/grouping.hpp"

namespace giph {

/// Knobs of the hierarchical placement tier (partition -> place -> refine;
/// DESIGN.md "Hierarchical placement").
struct HierarchicalOptions {
  PartitionOptions partition;
  /// Coarse search budget: steps = factor * num_clusters (0 = keep the HEFT
  /// warm start).
  int coarse_steps_factor = 2;
  /// Greedy coarse search (evaluation default); false samples the policy.
  bool coarse_greedy = true;
  /// Refinement sweeps over all clusters; each stops early when a full sweep
  /// keeps no move.
  int refine_rounds = 2;
  /// EFT-ranked device candidates tried per task during refinement (>= 1).
  int refine_topk = 4;
  bool refine = true;
};

/// Per-run observability of the three hierarchical stages. Objectives are
/// fine-instance SLR except coarse_objective, which is the SLR of the coarse
/// instance (its own denominator).
struct HierarchicalStats {
  int num_clusters = 0;
  double coarse_objective = 0.0;
  double expanded_objective = 0.0;  ///< fine SLR of the expanded placement
  double refined_objective = 0.0;   ///< fine SLR after refinement (<= expanded)
  std::int64_t refine_moves_tried = 0;
  std::int64_t refine_moves_kept = 0;
};

/// Hierarchical wrapper over PlacementSearchEnv for graphs far beyond the
/// policy's training scale (ROADMAP item 4): partition the fine graph into
/// clusters (partition_tasks), let the existing policy place the coarse
/// cluster graph unchanged — coarse nodes aggregate compute/bytes, so to the
/// policy it is just another problem instance — then expand and refine
/// within clusters while every other cluster's placement stays frozen.
///
/// Guarantees (test- and fuzz-enforced):
///  - the returned placement is feasible on (g, n);
///  - refine() never worsens the incumbent objective: every candidate move
///    runs through PlacementSearchEnv::apply (delta simulation, bitwise-equal
///    to full re-simulation) and is reverted unless it strictly improves, so
///    the objective is monotone non-increasing across refinement;
///  - the whole run is a pure function of (g, n, lat, options, policy
///    parameters, rng state).
class HierarchicalPlacer {
 public:
  /// Partitions immediately (cost O(E log E)). `g`, `n`, `lat` must outlive
  /// the placer. Throws std::invalid_argument on bad options.
  HierarchicalPlacer(const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat,
                     const HierarchicalOptions& opt);

  const GraphPartition& partition() const noexcept { return part_; }
  const HierarchicalOptions& options() const noexcept { return opt_; }
  /// SLR denominator of the fine instance (the normalizer of all fine
  /// objectives reported here).
  double fine_normalizer() const noexcept { return norm_; }

  /// Stage 1+2: HEFT warm start on the coarse graph, then `policy` searches
  /// it for coarse_steps_factor * num_clusters steps; returns the best
  /// coarse placement seen (never worse than the warm start).
  Placement place_clusters(SearchPolicy& policy, std::mt19937_64& rng,
                           double* coarse_objective = nullptr);

  /// Coarse placement -> fine placement (every task on its cluster's device).
  Placement expand(const Placement& coarse) const {
    return expand_placement(part_, coarse);
  }

  /// Stage 3: per-cluster hill-climb refinement of `fine` in place. For each
  /// cluster, each member task tries its refine_topk best feasible devices by
  /// EFT proxy (subset EST sweep + compute time); moves are kept only when
  /// the exact objective strictly improves, otherwise reverted exactly.
  /// Returns the final fine SLR.
  double refine(Placement& fine, HierarchicalStats* stats = nullptr);

  /// All three stages; fills `stats` when non-null.
  Placement place(SearchPolicy& policy, std::mt19937_64& rng,
                  HierarchicalStats* stats = nullptr);

  /// Fine SLR of an arbitrary feasible placement (one full simulation);
  /// exactly the value refine() reports for the same placement.
  double objective_of(const Placement& fine) const;

 private:
  const TaskGraph* g_;
  const DeviceNetwork* n_;
  const LatencyModel* lat_;
  HierarchicalOptions opt_;
  GraphPartition part_;
  double norm_ = 1.0;
};

}  // namespace giph
