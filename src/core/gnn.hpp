#pragma once

#include <random>

#include "core/gpnet.hpp"
#include "nn/layers.hpp"

namespace giph {

/// GNN architecture variants evaluated in the paper (Section 4.2.2 and
/// Appendix B.6).
enum class GnnKind {
  kGiPH,       ///< full-depth two-way message passing with edge features (Eq. 1)
  kGiPHK,      ///< k-step two-way message passing (Eq. 4), GiPH-k
  kGiPHNE,     ///< two-way message passing without edge features (GiPH-NE)
  kGraphSAGE,  ///< 3-layer uni-directional GraphSAGE (GraphSAGE-NE)
  kNone,       ///< no GNN: raw node features straight to the policy (GiPH-NE-Pol)
};

struct GnnConfig {
  GnnKind kind = GnnKind::kGiPH;
  int node_dim = 4;   ///< raw node feature dim (8 for the -NE variants)
  int edge_dim = 4;   ///< raw edge feature dim (ignored by -NE variants)
  int embed_dim = 5;  ///< dim_o per direction
  int k_steps = 3;    ///< message-passing steps for kGiPHK / layers for kGraphSAGE
};

/// Graph neural network over an arbitrary DAG (a gpNet, or the raw task
/// graph for GiPH-task-EFT). Messages pass along edge direction ("forward",
/// summarizing ancestors) and against it ("backward", summarizing
/// descendants) with separate parameters; the two summaries are concatenated
/// per node (Section 4.2.2).
class GraphEncoder {
 public:
  GraphEncoder(nn::ParamRegistry& reg, const GnnConfig& cfg, std::mt19937_64& rng);

  /// Returns a (num_nodes x out_dim) embedding matrix. `node_features` must
  /// be (num_nodes x node_dim); `edge_features` (num_edges x edge_dim) and is
  /// ignored by kinds that do not use edge features.
  nn::Var encode(const GraphView& view, const nn::Matrix& node_features,
                 const nn::Matrix& edge_features) const;

  int out_dim() const noexcept { return out_dim_; }
  const GnnConfig& config() const noexcept { return cfg_; }

 private:
  struct Direction {
    nn::Linear message;    ///< h1
    nn::Linear aggregate;  ///< h2
  };

  /// One direction of sequential (full-depth) message passing, batched per
  /// dependency level: all of a level's message/aggregate transforms run as
  /// one matrix-matrix matmul (bitwise equal per row to the per-node
  /// matrix-vector pass this replaced). Returns one 1 x dim_o row per node.
  std::vector<nn::Var> pass_sequential(const GraphView& view, const nn::Var& pre,
                                       const nn::Var& edge_feats, const Direction& dir,
                                       bool forward) const;
  /// One direction of k-step synchronous message passing (Eq. 4), every step
  /// batched over the whole graph. Returns the num_nodes x dim_o matrix.
  nn::Var pass_k_steps(const GraphView& view, const nn::Var& pre,
                       const nn::Var& edge_feats, const Direction& dir,
                       bool forward) const;

  GnnConfig cfg_;
  int out_dim_ = 0;
  nn::MLP pre_embed_;          ///< node feature pre-embedding (h3 for GiPH-k)
  Direction fwd_, bwd_;
  std::vector<nn::Linear> sage_layers_;  ///< kGraphSAGE
  nn::Linear sage_transform_;
};

/// Policy head (Section 4.2.3): a score MLP (in -> 16 -> 1) applied per
/// embedding row, masked to a candidate set, then softmax.
class ScorePolicy {
 public:
  ScorePolicy(nn::ParamRegistry& reg, const std::string& name, int in_dim,
              std::mt19937_64& rng);

  struct Sample {
    int choice = -1;       ///< element of `candidates` that was selected
    nn::Var log_prob;      ///< log pi(a | s), differentiable
    double prob = 0.0;     ///< probability of the sampled action
  };

  /// Samples (or arg-maxes when greedy) among `candidates`, which index rows
  /// of `embeddings`. Throws on an empty candidate set.
  Sample act(const nn::Var& embeddings, const std::vector<int>& candidates,
             std::mt19937_64& rng, bool greedy = false) const;

 private:
  nn::MLP score_;
};

}  // namespace giph
