#pragma once

/// \file giph.hpp
/// Umbrella header for the giph-cpp public API.
///
/// The library reproduces GiPH (Hu et al., MLSys 2023) end to end:
///
///   - problem model: TaskGraph, DeviceNetwork, Placement (graph/)
///   - runtime:       simulate(), Schedule, metrics, objectives (sim/)
///   - generators:    synthetic + ENAS-style datasets, grouping (gen/)
///   - heuristics:    HEFT, CPOP, EFT device selection (heft/)
///   - learning:      gpNet, GraphEncoder, GiPHAgent, train_reinforce (core/)
///   - baselines:     random, Placeto, RNN placer, local search (baselines/)
///   - evaluation:    comparable curves, statistics, ASCII charts (eval/)
///   - case study:    cooperative sensor fusion for CAVs (casestudy/)
///
/// Typical flow: generate or load a dataset, construct a GiPHAgent, train it
/// with train_reinforce(), then run_search() on new (TaskGraph, DeviceNetwork)
/// instances - no retraining needed when the device network changes.

#include "baselines/local_search.hpp"
#include "baselines/placeto.hpp"
#include "baselines/random_policies.hpp"
#include "baselines/rnn_placer.hpp"
#include "core/features.hpp"
#include "core/giph_agent.hpp"
#include "core/gnn.hpp"
#include "core/gpnet.hpp"
#include "core/reinforce.hpp"
#include "core/search_env.hpp"
#include "core/search_policy.hpp"
#include "eval/ascii_chart.hpp"
#include "eval/evaluation.hpp"
#include "gen/dataset.hpp"
#include "gen/device_network_gen.hpp"
#include "gen/enas_gen.hpp"
#include "gen/grouping.hpp"
#include "gen/params_io.hpp"
#include "gen/task_graph_gen.hpp"
#include "graph/device_network.hpp"
#include "graph/hardware.hpp"
#include "graph/placement.hpp"
#include "graph/serialization.hpp"
#include "graph/task_graph.hpp"
#include "graph/topology.hpp"
#include "heft/cpop.hpp"
#include "heft/heft.hpp"
#include "sim/latency_model.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
