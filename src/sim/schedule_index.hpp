#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"

namespace giph {

/// Per-device index over a schedule: for each device, the tasks placed on it
/// sorted by start time, with a running maximum of finish times. Answers the
/// "latest finish among tasks starting before t on device d" query of
/// earliest_start_on_queued in O(log tasks-on-device) instead of O(V),
/// turning the O(V^2 D) gpNet feature sweep into O(V D log V).
///
/// Rebuild with build() whenever the schedule or placement changes (the
/// search environment does this once per refresh). Buffers are reused across
/// builds: no steady-state allocations.
class ScheduleIndex {
 public:
  /// Indexes `sched` under placement `p` on a network of `num_devices`
  /// devices. Tasks with no device (device_of < 0) are skipped.
  void build(const Schedule& sched, const Placement& p, int num_devices);

  int num_devices() const noexcept { return static_cast<int>(offsets_.size()) - 1; }
  bool empty() const noexcept { return entries_.empty(); }

  /// Maximum finish time over tasks on device d whose start time is strictly
  /// less than `start`; -infinity when there is none. Exactly equal to the
  /// maximum the O(V) scan of earliest_start_on_queued computes.
  double max_finish_before(int d, double start) const;

 private:
  struct Entry {
    double start = 0.0;
    double max_finish = 0.0;  ///< prefix max of finish over the sorted slice
  };
  std::vector<Entry> entries_;  ///< per-device slices, each sorted by start
  std::vector<int> offsets_;    ///< device d owns entries_[offsets_[d], offsets_[d+1])
  std::vector<int> cursor_;     ///< scratch insertion cursors during build()
};

/// Queue-aware earliest start of task v on device d (same contract as the
/// unindexed earliest_start_on_queued in simulator.hpp), answered through a
/// prebuilt ScheduleIndex. `index` must have been built from (`sched`, `p`).
double earliest_start_on_queued(const Schedule& sched, const TaskGraph& g,
                                const DeviceNetwork& n, const Placement& p,
                                const LatencyModel& lat, const ScheduleIndex& index,
                                int v, int d);

/// Buffers for est_sweep() / compute_sweep(); reuse one across calls to stay
/// allocation-free in steady state (same discipline as SimWorkspace).
///
/// Besides scratch space, the workspace caches the expensive model
/// evaluations across calls: the per-edge comm-time rows (valid while the
/// edge's source device is unchanged — a one-task move invalidates only that
/// task's out-edges) and the placement-independent compute-time table. Both
/// are keyed on the (graph, network, latency model) modification stamps, so
/// one workspace can serve many problem instances (thread_local in feature
/// construction) and stale reuse is impossible as long as mutation goes
/// through the owning class interfaces. Cached values are the exact doubles a
/// fresh comm_time_row / compute_time_row call would produce — reuse is
/// bitwise-invisible.
struct EstSweepWorkspace {
  std::vector<double> est;       ///< result: nv x nd, row-major per task
  std::vector<double> dev_max;   ///< per device: running max finish
  std::vector<int> order;        ///< task ids sorted by schedule start
  std::vector<char> in_subset;   ///< est_sweep_subset scratch membership mask

  std::uint64_t g_stamp = 0;     ///< cache key (0 = nothing cached yet)
  std::uint64_t n_stamp = 0;
  std::uint64_t lat_stamp = 0;
  std::vector<double> comm_rows;   ///< ne x nd cached comm-time rows
  std::vector<int> comm_src;       ///< source device each row was built for (-1 = invalid)
  std::vector<double> compute_tbl; ///< nv x nd cached compute-time table
};

/// Fills (and caches) ws.compute_tbl[v * nd + k] = lat.compute_time(g, n, v,
/// k) for every pair, returning the table. Placement-independent, so repeat
/// calls under the same stamps are free.
const std::vector<double>& compute_sweep(const TaskGraph& g, const DeviceNetwork& n,
                                         const LatencyModel& lat,
                                         EstSweepWorkspace& ws);

/// Batched earliest_start_on_queued: fills ws.est with the EST of EVERY
/// (task, device) pair in one O(V D + E D) sweep — the candidate-scoring hot
/// path of feature construction and greedy device selection, which otherwise
/// pays one O(in_degree + log V) indexed query (and one virtual comm_time
/// call per in-edge) per pair.
///
/// ws.est[v * nd + d] is bitwise identical to earliest_start_on_queued(sched,
/// g, n, p, lat, v, d): the parent terms use comm_time_row (bitwise equal to
/// comm_time by contract), the device-busy term walks tasks in ascending
/// start order with a per-device running max (exactly the "started strictly
/// before v" set — groups of equal start update after every member reads),
/// and max-accumulation is exact so ordering differences cannot change it.
void est_sweep(const Schedule& sched, const TaskGraph& g, const DeviceNetwork& n,
               const Placement& p, const LatencyModel& lat, EstSweepWorkspace& ws);

/// Subset est_sweep: fills ws.est rows ONLY for the tasks in `subset`
/// (other rows are zeroed, not valid ESTs). Each filled row is bitwise
/// identical to the one the full est_sweep produces: parent terms use the
/// same cached comm rows and the device-busy walk visits the full schedule in
/// the same start order, merely skipping the row updates of non-subset tasks.
/// Cost is O(V log V + V + |subset| * D + in_edges(subset) * D) instead of
/// O(V * D + E * D) — the hierarchical refinement loop's per-cluster query.
/// Duplicate ids in `subset` are allowed (rows are just filled once).
void est_sweep_subset(const Schedule& sched, const TaskGraph& g, const DeviceNetwork& n,
                      const Placement& p, const LatencyModel& lat,
                      const std::vector<int>& subset, EstSweepWorkspace& ws);

}  // namespace giph
