#pragma once

#include <vector>

#include "sim/simulator.hpp"

namespace giph {

/// Per-device index over a schedule: for each device, the tasks placed on it
/// sorted by start time, with a running maximum of finish times. Answers the
/// "latest finish among tasks starting before t on device d" query of
/// earliest_start_on_queued in O(log tasks-on-device) instead of O(V),
/// turning the O(V^2 D) gpNet feature sweep into O(V D log V).
///
/// Rebuild with build() whenever the schedule or placement changes (the
/// search environment does this once per refresh). Buffers are reused across
/// builds: no steady-state allocations.
class ScheduleIndex {
 public:
  /// Indexes `sched` under placement `p` on a network of `num_devices`
  /// devices. Tasks with no device (device_of < 0) are skipped.
  void build(const Schedule& sched, const Placement& p, int num_devices);

  int num_devices() const noexcept { return static_cast<int>(offsets_.size()) - 1; }
  bool empty() const noexcept { return entries_.empty(); }

  /// Maximum finish time over tasks on device d whose start time is strictly
  /// less than `start`; -infinity when there is none. Exactly equal to the
  /// maximum the O(V) scan of earliest_start_on_queued computes.
  double max_finish_before(int d, double start) const;

 private:
  struct Entry {
    double start = 0.0;
    double max_finish = 0.0;  ///< prefix max of finish over the sorted slice
  };
  std::vector<Entry> entries_;  ///< per-device slices, each sorted by start
  std::vector<int> offsets_;    ///< device d owns entries_[offsets_[d], offsets_[d+1])
  std::vector<int> cursor_;     ///< scratch insertion cursors during build()
};

/// Queue-aware earliest start of task v on device d (same contract as the
/// unindexed earliest_start_on_queued in simulator.hpp), answered through a
/// prebuilt ScheduleIndex. `index` must have been built from (`sched`, `p`).
double earliest_start_on_queued(const Schedule& sched, const TaskGraph& g,
                                const DeviceNetwork& n, const Placement& p,
                                const LatencyModel& lat, const ScheduleIndex& index,
                                int v, int d);

}  // namespace giph
