#pragma once

#include <optional>
#include <random>
#include <vector>

#include "graph/placement.hpp"
#include "sim/latency_model.hpp"

namespace giph {

/// Start/finish times of one task execution.
struct TaskTiming {
  double start = 0.0;
  double finish = 0.0;
};

/// Full timing trace of one simulated run of a placed task graph.
struct Schedule {
  std::vector<TaskTiming> tasks;     ///< per task id
  std::vector<double> edge_start;    ///< per edge id: transmission start
  std::vector<double> edge_finish;   ///< per edge id: data available at dst
  double makespan = 0.0;             ///< exit finish - entry start
};

/// Simulation options. With noise sigma > 0, every realized computation /
/// communication time is drawn uniformly from [x(1-sigma), x(1+sigma)] around
/// the expected value x, using the provided engine (required when sigma > 0).
struct SimOptions {
  double noise = 0.0;
  std::mt19937_64* rng = nullptr;
  /// When true, outgoing transfers of a device are serialized through a
  /// single NIC (contention model) instead of the paper's contention-free
  /// concurrent sends. Local (same-device) transfers always bypass the NIC.
  bool serialize_transfers = false;
};

/// Discrete-event runtime simulator (Appendix B.5).
///
/// Execution model: each device runs at most one task at a time,
/// non-preemptively, serving runnable tasks from a FIFO queue in the order
/// they became runnable; inter-device transfers are contention-free and
/// overlap with computation; a task becomes runnable once all parent outputs
/// have arrived at its device. Entry tasks are runnable at t = 0.
///
/// Throws std::invalid_argument for infeasible placements and std::logic_error
/// for cyclic graphs.
Schedule simulate(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                  const LatencyModel& lat, const SimOptions& opt = {});

/// Expected makespan (noise-free simulation). Convenience wrapper.
double makespan(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                const LatencyModel& lat);

/// Earliest possible start time of task v on device d given the parent finish
/// times of `sched` (what-if analysis; ignores queueing on d). Entry tasks
/// return 0. Used for the gpNet "start-time potential" feature.
double earliest_start_on(const Schedule& sched, const TaskGraph& g,
                         const DeviceNetwork& n, const Placement& p,
                         const LatencyModel& lat, int v, int d);

/// Queue-aware variant: additionally accounts for device d being busy with
/// tasks that run before v in the current schedule (FIFO devices serve one
/// task at a time). This mirrors HEFT's processor-ready term and is the est
/// used by EFT device selection and the gpNet start-time-potential feature.
double earliest_start_on_queued(const Schedule& sched, const TaskGraph& g,
                                const DeviceNetwork& n, const Placement& p,
                                const LatencyModel& lat, int v, int d);

}  // namespace giph
