#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "graph/placement.hpp"
#include "graph/topology.hpp"
#include "sim/latency_model.hpp"
#include "sim/network_trace.hpp"

namespace giph {

/// Start/finish times of one task execution.
struct TaskTiming {
  double start = 0.0;
  double finish = 0.0;
};

/// Full timing trace of one simulated run of a placed task graph.
struct Schedule {
  std::vector<TaskTiming> tasks;     ///< per task id
  std::vector<double> edge_start;    ///< per edge id: transmission start
  std::vector<double> edge_finish;   ///< per edge id: data available at dst
  double makespan = 0.0;             ///< exit finish - entry start
};

/// Simulation options. With noise sigma > 0, every realized computation /
/// communication time is drawn uniformly from [x(1-sigma), x(1+sigma)] around
/// the expected value x, using the provided engine (required when sigma > 0).
/// sigma must be < 1: at sigma >= 1 the multiplicative draw could produce
/// negative durations and corrupt the event queue.
struct SimOptions {
  double noise = 0.0;
  std::mt19937_64* rng = nullptr;
  /// When true, outgoing transfers of a device are serialized through a
  /// single NIC (contention model) instead of the paper's contention-free
  /// concurrent sends. Local (same-device) transfers always bypass the NIC.
  bool serialize_transfers = false;
  /// Optional piecewise-constant per-link conditions (bandwidth factor,
  /// added startup delay, drop probability). A transfer in flight when a
  /// segment boundary passes has its remaining wire time rescaled at the
  /// breakpoint; breakpoints take effect *before* same-time sim events.
  /// nullptr or an empty trace leaves output bitwise identical to today's
  /// simulator. Must outlive the call; validated against the network.
  const NetworkTrace* trace = nullptr;
  /// Optional shared-link contention: transfers whose projected route crosses
  /// a busy physical link wait for it (sweep-line reservation per physical
  /// link, the NIC machinery generalized from devices to links). nullptr, or
  /// a map with only empty routes, leaves output bitwise identical. Must
  /// outlive the call; num_devices must match the network.
  const SharedLinkMap* shared_links = nullptr;
};

/// Throws std::invalid_argument when `opt` is unusable: noise is NaN or
/// >= 1.0, or noise > 0 without an engine. Shared by every simulator entry
/// point so the error surfaces at the caller's mistake, not inside the event
/// loop.
void validate_sim_options(const SimOptions& opt, const char* caller);

namespace detail {

/// One pending simulator event. Exposed only so SimWorkspace can own the
/// event-heap storage; not part of the public API.
struct SimEvent {
  double time;
  long seq;     // creation order, breaks time ties deterministically
  int kind;     // 0 = task done, 1 = transfer done, 2 = trace breakpoint
  int id;       // task id, edge id, or breakpoint index
  int version;  // transfer events only: stale when != the edge's version
};

}  // namespace detail

/// Reusable simulation buffers. One workspace amortizes every per-call
/// allocation of the discrete-event loop (event heap, dependency counters,
/// FIFO queues, NIC timelines) across the millions of simulations a training
/// or evaluation run performs: after the first call at a given problem size,
/// simulate_into() performs no steady-state heap allocations.
///
/// A workspace carries no results and may be reused freely across different
/// graphs, networks, and placements; it is NOT safe to share one workspace
/// between concurrent simulations (use one per thread).
struct SimWorkspace {
  std::vector<detail::SimEvent> heap;
  std::vector<int> remaining_inputs;
  std::vector<std::deque<int>> fifo;
  std::vector<int> running;
  std::vector<double> nic_free;
  // Dynamic-network buffers, touched only when SimOptions::trace /
  // shared_links are active (the static-network fast path never sizes them).
  std::vector<double> link_free;        ///< per physical link (shared_links)
  std::vector<int> trace_link;          ///< device pair -> trace link idx or -1
  std::vector<TraceSegment> trace_cur;  ///< per trace link: active segment
  std::vector<double> trace_factor;     ///< per trace link: current wire factor
  std::vector<int> edge_version;        ///< per edge: invalidates stale events
  std::vector<double> edge_finish_at;   ///< per edge: current predicted finish
  std::vector<double> edge_wire_begin;  ///< per edge: when wire time starts
  std::vector<double> edge_wire_factor; ///< per edge: factor baked into finish
  std::vector<char> edge_inflight;
};

/// Bookkeeping recorded by a full simulation (and kept current by delta
/// replays) that lets simulate_delta() reconstruct the exact mid-run simulator
/// state at the dirty-time boundary of a one-task move. The recorded event
/// seqs and runnable ranks preserve the full run's deterministic tie-breaking,
/// which is what makes the incremental path bitwise-identical.
///
/// One state belongs to one (graph, network, options) chain of schedules: a
/// full recording run seeds it, and each simulate_delta() call both consumes
/// and refreshes it, so single-move steps chain indefinitely.
struct DeltaSimState {
  bool valid = false;  ///< false until a recording run completes
  /// Per task: position in the run's make_runnable() order. Strictly
  /// monotone in runnable time; replays hand out fresh ranks above every
  /// recorded one, so relative order stays exact across chained deltas.
  std::vector<long> runnable_order;
  std::vector<long> task_event_seq;  ///< per task: seq of its task-done event
  std::vector<long> edge_event_seq;  ///< per edge: seq of its live transfer event
  std::vector<int> edge_final_version;  ///< per edge: version at run end (trace only)
  long total_seq = 0;            ///< seq counter at run end
  long next_runnable_rank = 0;   ///< rank counter at run end
  bool trace_recorded = false;  ///< the recording run had an active trace
  /// Replays whose unaffected prefix covers less than this fraction of tasks
  /// fall back to a full simulation (a tiny prefix saves nothing over the
  /// full run and the reconstruction itself costs O(V + E)).
  double min_prefix_fraction = 0.05;
  /// Reconstruction scratch (sorted (rank, task) pairs); not part of the
  /// recorded state.
  std::vector<std::pair<long, int>> runnable_scratch;
};

/// Outcome of simulate_delta(): whether the incremental replay ran or the
/// call fell back to a full simulation (either way `out` holds the exact
/// full-simulation schedule).
enum class DeltaSimResult { kReplayed, kFellBack };

/// Discrete-event runtime simulator (Appendix B.5).
///
/// Execution model: each device runs at most one task at a time,
/// non-preemptively, serving runnable tasks from a FIFO queue in the order
/// they became runnable; inter-device transfers are contention-free and
/// overlap with computation; a task becomes runnable once all parent outputs
/// have arrived at its device. Entry tasks are runnable at t = 0.
/// SimOptions::serialize_transfers / shared_links add NIC / physical-link
/// contention, and SimOptions::trace adds time-varying link conditions; all
/// three default off, reproducing the paper's model bitwise.
///
/// Throws std::invalid_argument for infeasible placements and std::logic_error
/// for cyclic graphs.
Schedule simulate(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                  const LatencyModel& lat, const SimOptions& opt = {});

/// Allocation-free core of simulate(): writes the schedule into `out` reusing
/// both the workspace buffers and `out`'s own vectors. Output is bitwise
/// identical to simulate() for the same inputs, regardless of what the
/// workspace or `out` previously held. When `record` is non-null the run
/// additionally fills it with the bookkeeping simulate_delta() needs (a few
/// percent of extra work; the output schedule is unaffected).
void simulate_into(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                   const LatencyModel& lat, SimWorkspace& ws, Schedule& out,
                   const SimOptions& opt = {}, DeltaSimState* record = nullptr);

/// Incremental re-simulation of a one-task move: `p` must differ from the
/// placement that produced `prev` at most at `moved_task`, `prev` must be the
/// schedule of a run that recorded (or refreshed) `ds` under the same graph,
/// network, latency model, and options, and `out` must not alias `prev`.
///
/// Computes the earliest dirty time T0 = min(previous start of the moved
/// task, earliest previous finish among its parents): before T0 the two runs
/// are provably identical (the moved task is inert until its first input
/// transfer dispatches, and queued-but-unstarted work displaces nothing), so
/// the call reconstructs the simulator state at T0 straight from `prev` + `ds`
/// and replays only events at or after it. Work is proportional to the
/// affected suffix instead of the whole graph.
///
/// Falls back to a full recording simulation (same output, DeltaSimResult::
/// kFellBack) whenever the replay could diverge or is not worth it: invalid /
/// mismatched `ds`, noise > 0 (the draw order spans the whole run), a moved
/// entry task (dirty from t = 0), a trace breakpoint at or after T0, a trace
/// combined with NIC serialization or shared links (reservations are not
/// reconstructible once rescales detach finish times from them), or an
/// unaffected prefix below ds.min_prefix_fraction. Either way `out` and `ds`
/// end bitwise identical to what simulate_into(..., &ds) would produce, so
/// single-move steps chain indefinitely.
DeltaSimResult simulate_delta(const TaskGraph& g, const DeviceNetwork& n,
                              const Placement& p, int moved_task,
                              const LatencyModel& lat, SimWorkspace& ws,
                              const Schedule& prev, DeltaSimState& ds, Schedule& out,
                              const SimOptions& opt = {});

/// Process-wide count of simulator invocations (simulate, simulate_into,
/// simulate_with_faults, and simulate_delta all count). Monotonic,
/// thread-safe; used by tests as a regression tripwire for the
/// one-simulation-per-search-step invariant. Equal to full_simulation_count()
/// + delta_simulation_count().
std::uint64_t simulation_count() noexcept;

/// Full event-loop runs (everything except delta replays; a simulate_delta
/// call that falls back counts here, via its inner full simulation).
std::uint64_t full_simulation_count() noexcept;

/// simulate_delta() calls that actually replayed incrementally.
std::uint64_t delta_simulation_count() noexcept;

/// simulate_delta() calls that fell back to a full simulation.
std::uint64_t delta_fallback_count() noexcept;

namespace detail {
/// Increments full_simulation_count(); for simulator implementations only.
void bump_simulation_count() noexcept;
/// Increments delta_simulation_count(); for simulate_delta only.
void bump_delta_simulation_count() noexcept;
/// Increments delta_fallback_count(); for simulate_delta only.
void bump_delta_fallback_count() noexcept;
}  // namespace detail

/// Expected makespan (noise-free simulation). Convenience wrapper.
double makespan(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                const LatencyModel& lat);

/// Earliest possible start time of task v on device d given the parent finish
/// times of `sched` (what-if analysis; ignores queueing on d). Entry tasks
/// return 0. Used for the gpNet "start-time potential" feature.
double earliest_start_on(const Schedule& sched, const TaskGraph& g,
                         const DeviceNetwork& n, const Placement& p,
                         const LatencyModel& lat, int v, int d);

/// Queue-aware variant: additionally accounts for device d being busy with
/// tasks that run before v in the current schedule (FIFO devices serve one
/// task at a time). This mirrors HEFT's processor-ready term and is the est
/// used by EFT device selection and the gpNet start-time-potential feature.
/// O(V) per call; the ScheduleIndex overload (schedule_index.hpp) answers the
/// same query in O(in_degree + log V).
double earliest_start_on_queued(const Schedule& sched, const TaskGraph& g,
                                const DeviceNetwork& n, const Placement& p,
                                const LatencyModel& lat, int v, int d);

}  // namespace giph
