#pragma once

#include <limits>
#include <random>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace giph {

/// Kinds of injected faults / dynamic-network events (Section 5 motivates
/// adaptivity to exactly these changes; the paper evaluates only benign
/// multiplicative noise, so this subsystem is the robustness extension).
enum class FaultKind {
  /// Device fails hard at `time`: the task running on it is killed, queued
  /// tasks never run, and everything placed there that has not finished is
  /// stranded. In-flight transfers already on the wire complete.
  kDeviceCrash,
  /// Graceful churn departure at `time`: the task already running finishes
  /// (and its outputs are sent), but tasks not yet started on the device are
  /// stranded.
  kDeviceLeave,
  /// Straggler: from `time` until `until`, durations on the device are
  /// stretched by `factor` (> 1 = slower). The remaining work of a task
  /// already running is rescaled, so a permanent slowdown at t = 0 is
  /// equivalent to a proportionally slower device.
  kSlowdown,
  /// Link degradation: from `time` until `until`, transfers on the directed
  /// link (src -> dst) take `factor` times as long and incur an extra
  /// `delay_add` at start. For an in-flight transfer only the remaining
  /// *wire* time is rescaled by `factor`: the startup-delay portion
  /// (LatencyModel::comm_startup, already committed at dispatch) is exempt.
  kLinkDegrade,
  /// Churn join at `time`: device `joined` becomes available with symmetric
  /// links of `join_bandwidth` / `join_delay` to every existing device. A
  /// fixed placement cannot use it; it matters for re-placement
  /// (post_fault_network() includes it).
  kDeviceJoin,
};

/// One scheduled fault event. Fields not used by the kind are ignored.
struct FaultEvent {
  FaultKind kind = FaultKind::kDeviceCrash;
  double time = 0.0;  ///< simulation time at which the event fires
  int device = -1;    ///< crash / leave / slowdown target
  int link_src = -1;  ///< kLinkDegrade: directed link source
  int link_dst = -1;  ///< kLinkDegrade: directed link destination
  double factor = 1.0;    ///< duration multiplier (slowdown / link degrade)
  double delay_add = 0.0; ///< kLinkDegrade: extra per-transfer startup delay
  /// End of a transient effect; infinity = permanent.
  double until = std::numeric_limits<double>::infinity();
  Device joined;               ///< kDeviceJoin: the new device
  double join_bandwidth = 1.0; ///< kDeviceJoin: symmetric link bandwidth
  double join_delay = 0.0;     ///< kDeviceJoin: symmetric link delay
};

/// A deterministic, seeded fault schedule: the same plan replayed against the
/// same placement with the same SimOptions yields a bitwise-identical result.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const noexcept { return events.empty(); }
};

/// Validates `plan` against `n` (device ids may also reference devices joined
/// by *earlier* join events of the plan, in time order; events need not be
/// pre-sorted - every consumer sorts stably by time). Throws
/// std::invalid_argument naming the offending event (its describe() rendering
/// and position in the plan), the bad field, and the accepted range. Called
/// by simulate_with_faults, post_fault_network, the robustness harness, and
/// generate_fault_plan itself.
void validate_fault_plan(const FaultPlan& plan, const DeviceNetwork& n);

/// Parameters of the seeded random fault-plan generator. Event times are
/// drawn uniformly from [0, horizon].
struct FaultPlanParams {
  double horizon = 100.0;  ///< time window in which events fire
  int crashes = 1;
  int leaves = 0;
  int slowdowns = 0;
  int link_degrades = 0;
  int joins = 0;
  double slowdown_factor = 3.0;     ///< duration multiplier of stragglers
  double link_factor = 4.0;         ///< duration multiplier of degraded links
  double transient_fraction = 0.5;  ///< probability a slowdown/degrade is transient
};

/// Draws a random fault plan. Deterministic for a fixed rng state; events are
/// returned sorted by time. Crash/leave targets are distinct devices and at
/// least one device is always left untouched so repair stays possible.
FaultPlan generate_fault_plan(const DeviceNetwork& n, const FaultPlanParams& params,
                              std::mt19937_64& rng);

/// Parses a compact comma-separated fault spec, e.g.
///   "crash:2@30,leave:0@45,slow:1@10x3:60,link:0-3@20x4+5,join@50"
/// Grammar per event:
///   crash:<dev>@<t>            leave:<dev>@<t>
///   slow:<dev>@<t>x<factor>[:<until>]
///   link:<src>-<dst>@<t>x<factor>[+<delay>][:<until>]
///   join@<t>[x<speed>]
/// Throws std::invalid_argument on malformed specs.
FaultPlan parse_fault_plan(const std::string& spec);

/// One-line human-readable rendering of an event (logging / CLI output).
std::string describe(const FaultEvent& e);

/// Result of a fault-aware simulation.
struct FaultSimResult {
  /// Timing of the tasks that completed; stranded tasks keep start/finish of
  /// -1. makespan spans completed tasks only (0 when nothing ran).
  Schedule schedule;
  /// Task ids that could not complete (killed, never started on a dead
  /// device, or transitively starved of an input), ascending.
  std::vector<int> stranded;
  /// Devices that were crashed or left by the end of the run.
  std::vector<int> failed_devices;

  /// True when every task completed despite the faults.
  bool completed() const noexcept { return stranded.empty(); }
};

/// Replays `p` under the fault plan with the same discrete-event execution
/// model as simulate(). With an empty plan the result's schedule is bitwise
/// identical to simulate()'s (including the noise draw order), so the fault
/// path is a strict superset of the benign simulator. Throws like simulate().
FaultSimResult simulate_with_faults(const TaskGraph& g, const DeviceNetwork& n,
                                    const Placement& p, const LatencyModel& lat,
                                    const FaultPlan& plan, const SimOptions& opt = {});

/// The device network as it stands after every event of `plan` has fired:
/// joins added, slowdowns/degrades with until == infinity applied, crashed or
/// departed devices removed. `old_to_new[k]` maps pre-fault device ids
/// (including joined ones, appended after the base ids) to post-fault ids, or
/// -1 for removed devices.
struct PostFaultNetwork {
  DeviceNetwork network;
  std::vector<int> old_to_new;
  std::vector<int> new_to_old;
};
PostFaultNetwork post_fault_network(const DeviceNetwork& base, const FaultPlan& plan);

/// Maps a placement through old_to_new; tasks on removed devices become
/// unplaced (-1).
Placement remap_placement(const Placement& p, const std::vector<int>& old_to_new);

/// Copy of `g` with pinned-device ids mapped through old_to_new. A task
/// pinned to a removed device stays pinned to -2, which no device satisfies:
/// feasibility checks then report the instance unrecoverable instead of
/// silently unpinning.
TaskGraph remap_pinned(const TaskGraph& g, const std::vector<int>& old_to_new);

}  // namespace giph
