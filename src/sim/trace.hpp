#pragma once

#include <iosfwd>
#include <string>

#include "sim/simulator.hpp"
#include "sim/stream.hpp"

namespace giph {

/// Writes the schedule as CSV: one `task` row per task (id, name, device,
/// start, finish) followed by one `edge` row per data link (id, src, dst,
/// from_device, to_device, start, finish). Times are written with
/// max_digits10 precision, so parsing them back recovers the exact doubles:
/// traces double as exact fixtures, not just plotting input. The stream's
/// precision is restored before returning.
void write_schedule_csv(std::ostream& out, const TaskGraph& g, const DeviceNetwork& n,
                        const Placement& p, const Schedule& sched);

/// Writes the per-frame streaming timings as CSV: one row per frame (frame,
/// arrival, finish, latency) followed by one `summary` row carrying frames,
/// steady_frame, throughput, p50, p99, and makespan. Same exact-fixture
/// contract as write_schedule_csv: times at max_digits10 precision (parsing
/// recovers the exact doubles) and the stream's precision restored before
/// returning.
void write_stream_csv(std::ostream& out, const StreamResult& result);

/// Renders an ASCII Gantt chart of the schedule: one row per device, time on
/// the horizontal axis scaled to `width` characters. Task executions are
/// drawn with per-task letters; '.' marks idle time.
std::string ascii_gantt(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                        const Schedule& sched, int width = 72);

}  // namespace giph
