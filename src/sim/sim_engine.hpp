#pragma once

// Shared discrete-event core behind simulate_into() and simulate_delta().
// Both entry points reconstruct a (possibly mid-run) simulator state into the
// SimWorkspace, then drive this engine; having exactly one copy of the event
// semantics is what makes the incremental path bitwise-identical to the full
// one by construction. Internal header: not part of the public API.

#include <algorithm>
#include <random>
#include <string>

#include "sim/simulator.hpp"

namespace giph::detail {

constexpr int kTaskDone = 0;
constexpr int kTransferDone = 1;
constexpr int kBreakpoint = 2;
constexpr int kFrameArrival = 3;

/// Streaming context for simulate_core(): the graph being simulated is F
/// frame-copies of a base graph (virtual task id = f * base_tasks + v, no
/// cross-frame edges), and frame f's entry tasks become runnable at
/// arrivals[f] instead of t = 0. Frame 0 always arrives at t = 0 and is
/// released exactly like simulate()'s entry tasks, so a 1-frame plan adds no
/// events and reproduces the one-shot run bitwise.
struct StreamPlan {
  int base_tasks = 0;  ///< V of the base (one-frame) graph
  /// Entry task ids of the base graph, ascending; frame f releases the copies
  /// f * base_tasks + v in this order.
  const std::vector<int>* entries = nullptr;
  /// Per-frame arrival times, non-decreasing, arrivals[0] == 0. One
  /// kFrameArrival event per frame >= 1 is pushed at init (after trace
  /// breakpoints), so an arrival coinciding with a sim event pops first.
  const std::vector<double>* arrivals = nullptr;
};

// Later events sort before earlier ones so heap operations keep the earliest
// event at the front; ties break by creation order, making pop order fully
// deterministic (and identical to the std::priority_queue this replaced).
struct EventLater {
  bool operator()(const SimEvent& a, const SimEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

inline double realize(double expected, const SimOptions& opt) {
  if (opt.noise <= 0.0) return expected;
  std::uniform_real_distribution<double> d(expected * (1.0 - opt.noise),
                                           expected * (1.0 + opt.noise));
  return d(*opt.rng);
}

/// The event loop of Appendix B.5 over externally prepared state. The caller
/// owns initialization: workspace buffers sized and seeded, `out` prefilled,
/// `seq` / `completed` / `runnable_rank` positioned, and the heap holding the
/// pending events (a fresh heap plus entry tasks for a full run; the events
/// crossing the dirty-time boundary for a delta replay).
struct SimEngine {
  const TaskGraph& g;
  const DeviceNetwork& n;
  const Placement& p;
  const LatencyModel& lat;
  SimWorkspace& ws;
  Schedule& out;
  const SimOptions& opt;
  const NetworkTrace* trace;    ///< collapsed: nullptr when absent or empty
  const SharedLinkMap* shared;  ///< nullptr when absent
  /// (trace link, segment) per kBreakpoint event id. Full runs only: a delta
  /// replay refuses windows containing breakpoints, so it passes nullptr.
  const std::vector<std::pair<int, int>>* breakpoints;
  /// Optional bookkeeping for simulate_delta(): event seqs, runnable ranks,
  /// and edge versions recorded as the run unfolds. May be null.
  DeltaSimState* rec;
  int nd = 0;
  /// Streaming runs only (simulate_core with a plan); null otherwise, which
  /// keeps the 12-value aggregate initializers of the one-shot paths valid.
  const StreamPlan* stream = nullptr;

  long seq = 0;
  int completed = 0;
  long runnable_rank = 0;

  void push_event(double time, int kind, int id, int version = 0) {
    ws.heap.push_back(SimEvent{time, seq++, kind, id, version});
    std::push_heap(ws.heap.begin(), ws.heap.end(), EventLater{});
  }

  void start_task(int v, double t) {
    const int d = p.device_of(v);
    ++ws.running[d];
    out.tasks[v].start = t;
    const double w = realize(lat.compute_time(g, n, v, d), opt);
    if (rec != nullptr) rec->task_event_seq[v] = seq;
    push_event(t + w, kTaskDone, v);
  }

  void make_runnable(int v, double t) {
    if (rec != nullptr) rec->runnable_order[v] = runnable_rank;
    ++runnable_rank;
    const int d = p.device_of(v);
    if (ws.running[d] < n.device(d).cores && ws.fifo[d].empty()) {
      start_task(v, t);
    } else {
      ws.fifo[d].push_back(v);
    }
  }

  void run() {
    auto& heap = ws.heap;
    const EventLater later;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), later);
      const SimEvent ev = heap.back();
      heap.pop_back();
      if (ev.kind == kTaskDone) {
        const int v = ev.id;
        out.tasks[v].finish = ev.time;
        ++completed;
        const int d = p.device_of(v);
        // Outputs start transmitting to every child's device - concurrently in
        // the paper's model, back-to-back through the NIC under contention.
        for (int e : g.out_edges(v)) {
          const int dl = p.device_of(g.edge(e).dst);
          const double c = realize(lat.comm_time(g, n, e, d, dl), opt);
          double start = ev.time;
          if (dl != d) {
            if (opt.serialize_transfers) start = std::max(start, ws.nic_free[d]);
            if (shared != nullptr) {
              for (const int li : shared->links_on(d, dl)) {
                start = std::max(start, ws.link_free[li]);
              }
            }
          }
          double dur = c;
          const int tl =
              trace != nullptr ? ws.trace_link[static_cast<std::size_t>(d) * nd + dl]
                               : -1;
          if (tl >= 0) {
            // Split the realized time into startup (delay) and wire (bandwidth)
            // portions; only the wire portion scales with the link conditions.
            // Noise is multiplicative, so the realized startup keeps the
            // expected startup fraction de / ce of the realized total.
            const double ce = lat.comm_time(g, n, e, d, dl);
            const double de = lat.comm_startup(g, n, e, d, dl);
            const double dr = ce > 0.0 ? de * (c / ce) : 0.0;
            const TraceSegment& seg = ws.trace_cur[tl];
            const double startup = dr + seg.delay_add;
            dur = startup + (c - dr) * ws.trace_factor[tl];
            ws.edge_wire_begin[e] = start + startup;
            ws.edge_wire_factor[e] = ws.trace_factor[tl];
          } else if (trace != nullptr) {
            ws.edge_wire_begin[e] = start;
            ws.edge_wire_factor[e] = 1.0;
          }
          if (dl != d) {
            if (opt.serialize_transfers) ws.nic_free[d] = start + dur;
            if (shared != nullptr) {
              // Reserve every physical link on the route for the whole transfer
              // (store-and-forward is not modeled; the route is one pipe).
              for (const int li : shared->links_on(d, dl)) {
                ws.link_free[li] = start + dur;
              }
            }
          }
          if (trace != nullptr) {
            ws.edge_inflight[e] = 1;
            ws.edge_finish_at[e] = start + dur;
          }
          out.edge_start[e] = start;
          if (rec != nullptr) rec->edge_event_seq[e] = seq;
          push_event(start + dur, kTransferDone, e,
                     trace != nullptr ? ws.edge_version[e] : 0);
        }
        --ws.running[d];
        if (!ws.fifo[d].empty() && ws.running[d] < n.device(d).cores) {
          const int next = ws.fifo[d].front();
          ws.fifo[d].pop_front();
          start_task(next, ev.time);
        }
      } else if (ev.kind == kTransferDone) {
        const int e = ev.id;
        if (trace != nullptr) {
          if (ev.version != ws.edge_version[e]) continue;  // stale: rescaled
          ws.edge_inflight[e] = 0;
        }
        out.edge_finish[e] = ev.time;
        const int child = g.edge(e).dst;
        if (--ws.remaining_inputs[child] == 0) make_runnable(child, ev.time);
      } else if (ev.kind == kFrameArrival) {
        // Frame ev.id enters the stream: its entry-task copies join their
        // device queues (or start) in base entry order, like frame 0 at t = 0.
        const int base = ev.id * stream->base_tasks;
        for (const int v : *stream->entries) make_runnable(base + v, ev.time);
      } else {  // kBreakpoint
        const auto [li, si] = (*breakpoints)[ev.id];
        const TraceSegment& seg = trace->links[li].segments[si];
        ws.trace_cur[li] = seg;
        const double f_new = wire_factor(seg);
        ws.trace_factor[li] = f_new;
        const int k = trace->links[li].src;
        const int l = trace->links[li].dst;
        // Rescale the remaining wire time of every in-flight transfer on this
        // link, in ascending edge-id order (the oracle mirrors this order).
        // delay_add changes never affect in-flight transfers: their startup was
        // committed at dispatch.
        const int ne = g.num_edges();
        for (int e = 0; e < ne; ++e) {
          if (ws.edge_inflight[e] == 0) continue;
          if (p.device_of(g.edge(e).src) != k || p.device_of(g.edge(e).dst) != l) {
            continue;
          }
          if (ws.edge_wire_factor[e] == f_new) continue;
          const double anchor = std::max(ev.time, ws.edge_wire_begin[e]);
          const double remaining = ws.edge_finish_at[e] - anchor;
          if (remaining <= 0.0) {
            // Wire already done (finishing this instant, or still in startup
            // with zero wire time): keep the pending event and its seq.
            ws.edge_wire_factor[e] = f_new;
            continue;
          }
          ws.edge_finish_at[e] = anchor + remaining * (f_new / ws.edge_wire_factor[e]);
          ws.edge_wire_factor[e] = f_new;
          if (rec != nullptr) rec->edge_event_seq[e] = seq;
          push_event(ws.edge_finish_at[e], kTransferDone, e, ++ws.edge_version[e]);
        }
      }
    }
  }

  /// Completion check, makespan, and the recorded-state epilogue.
  void finalize(const char* caller) {
    const int nv = g.num_tasks();
    if (completed != nv) {
      throw std::logic_error(std::string(caller) +
                             ": not all tasks completed (cyclic graph?)");
    }
    double first_start = out.tasks[0].start, last_finish = out.tasks[0].finish;
    for (const TaskTiming& t : out.tasks) {
      first_start = std::min(first_start, t.start);
      last_finish = std::max(last_finish, t.finish);
    }
    out.makespan = last_finish - first_start;
    if (rec != nullptr) {
      rec->total_seq = seq;
      rec->next_runnable_rank = runnable_rank;
      rec->trace_recorded = trace != nullptr;
      if (trace != nullptr) {
        rec->edge_final_version.assign(ws.edge_version.begin(),
                                       ws.edge_version.begin() + g.num_edges());
      }
      rec->valid = true;
    }
  }
};

/// The full init-run-finalize pipeline behind simulate_into() and
/// simulate_streaming(): validates options, resets workspace buffers, seeds
/// trace breakpoints / frame arrivals / entry tasks, and drives SimEngine.
/// `plan == nullptr` is exactly simulate_into(); with a plan, `g` and `p`
/// must be the frame-replicated instance the plan describes. `caller`
/// prefixes every diagnostic.
void simulate_core(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                   const LatencyModel& lat, SimWorkspace& ws, Schedule& out,
                   const SimOptions& opt, DeltaSimState* record,
                   const StreamPlan* plan, const char* caller);

}  // namespace giph::detail
