#include "sim/metrics.hpp"

#include <limits>
#include <stdexcept>

namespace giph {
namespace {

double min_compute_cost(const TaskGraph& g, const DeviceNetwork& n,
                        const LatencyModel& lat, int v) {
  double best = std::numeric_limits<double>::infinity();
  for (int d : feasible_devices(g, n, v)) {
    best = std::min(best, lat.compute_time(g, n, v, d));
  }
  if (!std::isfinite(best)) {
    throw std::runtime_error("slr_denominator: task has no feasible device");
  }
  return best;
}

}  // namespace

double slr_denominator(const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat) {
  const auto cp = g.critical_path_nodes(
      [&](int v) { return min_compute_cost(g, n, lat, v); });
  double denom = 0.0;
  for (int v : cp) denom += min_compute_cost(g, n, lat, v);
  return denom;
}

double slr(double makespan_value, double denominator) {
  if (denominator <= 0.0) {
    throw std::invalid_argument("slr: denominator must be positive");
  }
  return makespan_value / denominator;
}

double total_cost(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                  const LatencyModel& lat) {
  double cost = 0.0;
  for (int v = 0; v < g.num_tasks(); ++v) {
    cost += lat.compute_time(g, n, v, p.device_of(v));
  }
  for (int e = 0; e < g.num_edges(); ++e) {
    cost += lat.comm_time(g, n, e, p.device_of(g.edge(e).src), p.device_of(g.edge(e).dst));
  }
  return cost;
}

Objective makespan_objective(const LatencyModel& lat) {
  return [&lat](const TaskGraph& g, const DeviceNetwork& n, const Placement& p) {
    return makespan(g, n, p, lat);
  };
}

Objective noisy_makespan_objective(const LatencyModel& lat, double sigma,
                                   std::mt19937_64& rng) {
  return [&lat, sigma, &rng](const TaskGraph& g, const DeviceNetwork& n,
                             const Placement& p) {
    return simulate(g, n, p, lat, SimOptions{sigma, &rng}).makespan;
  };
}

Objective total_cost_objective(const LatencyModel& lat) {
  return [&lat](const TaskGraph& g, const DeviceNetwork& n, const Placement& p) {
    return total_cost(g, n, p, lat);
  };
}

}  // namespace giph
