#include "sim/metrics.hpp"

#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

namespace giph {
namespace {

double min_compute_cost(const TaskGraph& g, const DeviceNetwork& n,
                        const LatencyModel& lat, int v) {
  double best = std::numeric_limits<double>::infinity();
  for (int d : feasible_devices(g, n, v)) {
    best = std::min(best, lat.compute_time(g, n, v, d));
  }
  if (!std::isfinite(best)) {
    throw std::runtime_error("slr_denominator: task has no feasible device");
  }
  return best;
}

}  // namespace

double slr_denominator(const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat) {
  const auto cp = g.critical_path_nodes(
      [&](int v) { return min_compute_cost(g, n, lat, v); });
  double denom = 0.0;
  for (int v : cp) denom += min_compute_cost(g, n, lat, v);
  return denom;
}

double slr(double makespan_value, double denominator) {
  if (denominator <= 0.0) {
    throw std::invalid_argument("slr: denominator must be positive");
  }
  return makespan_value / denominator;
}

double total_cost(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                  const LatencyModel& lat) {
  double cost = 0.0;
  for (int v = 0; v < g.num_tasks(); ++v) {
    cost += lat.compute_time(g, n, v, p.device_of(v));
  }
  for (int e = 0; e < g.num_edges(); ++e) {
    cost += lat.comm_time(g, n, e, p.device_of(g.edge(e).src), p.device_of(g.edge(e).dst));
  }
  return cost;
}

ScheduleObjective schedule_objective(Objective legacy) {
  return [legacy = std::move(legacy)](const TaskGraph& g, const DeviceNetwork& n,
                                      const Placement& p, const Schedule&) {
    return legacy(g, n, p);
  };
}

double evaluate_objective(const ScheduleObjective& obj, const TaskGraph& g,
                          const DeviceNetwork& n, const Placement& p,
                          const LatencyModel& lat) {
  return obj(g, n, p, simulate(g, n, p, lat));
}

ScheduleObjective makespan_objective(const LatencyModel&) {
  return [](const TaskGraph&, const DeviceNetwork&, const Placement&,
            const Schedule& sched) { return sched.makespan; };
}

ScheduleObjective noisy_makespan_objective(const LatencyModel& lat, double sigma,
                                           std::mt19937_64& rng) {
  // Noise must be re-sampled per evaluation, so this objective keeps its own
  // simulation; the workspace amortizes its allocations across calls. The
  // objective is copyable, hence the shared workspace (single-threaded use,
  // like the captured rng).
  auto ws = std::make_shared<SimWorkspace>();
  auto noisy = std::make_shared<Schedule>();
  return [&lat, sigma, &rng, ws, noisy](const TaskGraph& g, const DeviceNetwork& n,
                                        const Placement& p, const Schedule&) {
    simulate_into(g, n, p, lat, *ws, *noisy, SimOptions{sigma, &rng});
    return noisy->makespan;
  };
}

ScheduleObjective streaming_p99_objective(const LatencyModel& lat,
                                          StreamOptions stream) {
  // Streaming metrics need their own iterated-graph simulation: the one-shot
  // schedule the environment hands over says nothing about cross-frame
  // pipelining. The workspace caches the replicated graph across calls.
  auto ws = std::make_shared<StreamWorkspace>();
  auto res = std::make_shared<StreamResult>();
  return [&lat, stream = std::move(stream), ws, res](
             const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
             const Schedule&) {
    simulate_streaming_into(g, n, p, lat, *ws, *res, stream);
    return res->p99_latency;
  };
}

ScheduleObjective streaming_throughput_objective(const LatencyModel& lat,
                                                 StreamOptions stream) {
  auto ws = std::make_shared<StreamWorkspace>();
  auto res = std::make_shared<StreamResult>();
  return [&lat, stream = std::move(stream), ws, res](
             const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
             const Schedule&) {
    simulate_streaming_into(g, n, p, lat, *ws, *res, stream);
    // Minimized: the mean inter-frame completion period. 1 / inf == 0.0 for
    // the degenerate zero-span case, which is indeed unbeatable.
    return 1.0 / res->throughput;
  };
}

ScheduleObjective total_cost_objective(const LatencyModel& lat) {
  return [&lat](const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                const Schedule&) { return total_cost(g, n, p, lat); };
}

}  // namespace giph
