#include "sim/stream.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>
#include <string>

#include "sim/sim_engine.hpp"

namespace giph {
namespace {

// Maps the replicated graph's virtual ids back to the base instance
// (v % V, e % E) before delegating, so any latency model defined on the base
// graph — profile tables included — serves every frame unchanged. Delegation
// passes the base graph and base ids straight through: tiling one frame is
// the identity, which is what keeps the F = 1 reduction bitwise.
class TiledLatencyModel final : public LatencyModel {
 public:
  TiledLatencyModel(const LatencyModel& base, const TaskGraph& base_graph)
      : base_(base),
        g_(base_graph),
        nv_(base_graph.num_tasks()),
        ne_(base_graph.num_edges()) {}

  double compute_time(const TaskGraph&, const DeviceNetwork& n, int v,
                      int k) const override {
    return base_.compute_time(g_, n, v % nv_, k);
  }

  double comm_time(const TaskGraph&, const DeviceNetwork& n, int e, int k,
                   int l) const override {
    return base_.comm_time(g_, n, e % ne_, k, l);
  }

  double comm_startup(const TaskGraph&, const DeviceNetwork& n, int e, int k,
                      int l) const override {
    return base_.comm_startup(g_, n, e % ne_, k, l);
  }

 private:
  const LatencyModel& base_;
  const TaskGraph& g_;
  int nv_;
  int ne_;
};

// Rebuilds ws.replicated as `frames` copies of g (task f*V+v, edge f*E+e, no
// cross-frame edges) unless the cache already holds exactly that.
void ensure_replicated(const TaskGraph& g, int frames, StreamWorkspace& ws) {
  if (ws.cached_frames == frames && ws.cached_graph_stamp == g.stamp()) return;
  const int nv = g.num_tasks();
  const int ne = g.num_edges();
  ws.replicated = TaskGraph{};
  for (int f = 0; f < frames; ++f) {
    for (int v = 0; v < nv; ++v) ws.replicated.add_task(g.task(v));
  }
  for (int f = 0; f < frames; ++f) {
    for (int e = 0; e < ne; ++e) {
      const DataLink& l = g.edge(e);
      ws.replicated.add_edge(f * nv + l.src, f * nv + l.dst, l.bytes);
    }
  }
  ws.entries.clear();
  for (int v = 0; v < nv; ++v) {
    if (g.in_degree(v) == 0) ws.entries.push_back(v);
  }
  ws.cached_graph_stamp = g.stamp();
  ws.cached_frames = frames;
}

// One full streaming simulation of exactly `frames` frames into `out`.
void run_stream_frames(const TaskGraph& g, const DeviceNetwork& n,
                       const Placement& p, const LatencyModel& lat,
                       StreamWorkspace& ws, StreamResult& out,
                       const StreamOptions& opt, int frames) {
  const int nv = g.num_tasks();
  ensure_replicated(g, frames, ws);

  // Arrival times first: all F - 1 jitter draws precede every simulation draw
  // in frame order (the oracle mirrors this order), and one frame draws
  // nothing, leaving the rng stream exactly where simulate() expects it.
  out.frame_arrival.assign(frames, 0.0);
  for (int f = 1; f < frames; ++f) {
    double gap = opt.interval;
    if (opt.arrival_jitter > 0.0) {
      std::uniform_real_distribution<double> u(
          opt.interval * (1.0 - opt.arrival_jitter),
          opt.interval * (1.0 + opt.arrival_jitter));
      gap = u(*opt.sim.rng);
    }
    out.frame_arrival[f] = out.frame_arrival[f - 1] + gap;
  }

  // Every frame runs on the same devices as the base placement.
  if (ws.replicated_placement.num_tasks() != frames * nv) {
    ws.replicated_placement = Placement(frames * nv);
  }
  for (int f = 0; f < frames; ++f) {
    for (int v = 0; v < nv; ++v) {
      ws.replicated_placement.set(f * nv + v, p.device_of(v));
    }
  }

  const TiledLatencyModel tiled(lat, g);
  detail::StreamPlan plan;
  plan.base_tasks = nv;
  plan.entries = &ws.entries;
  plan.arrivals = &out.frame_arrival;
  detail::simulate_core(ws.replicated, n, ws.replicated_placement, tiled, ws.sim,
                        out.schedule, opt.sim, nullptr, &plan,
                        "simulate_streaming");

  out.frames = frames;
  out.steady_frame = -1;
  out.frame_finish.assign(frames, 0.0);
  out.frame_latency.assign(frames, 0.0);
  for (int f = 0; f < frames; ++f) {
    double fin = out.frame_arrival[f];
    for (int v = 0; v < nv; ++v) {
      fin = std::max(fin, out.schedule.tasks[f * nv + v].finish);
    }
    out.frame_finish[f] = fin;
    out.frame_latency[f] = fin - out.frame_arrival[f];
  }
  out.makespan = out.schedule.makespan;
  if (frames > 1) {
    const double span = out.frame_finish[frames - 1] - out.frame_finish[0];
    out.throughput = span > 0.0 ? frames / span
                                : std::numeric_limits<double>::infinity();
  } else {
    out.throughput = out.frame_latency[0] > 0.0
                         ? 1.0 / out.frame_latency[0]
                         : std::numeric_limits<double>::infinity();
  }
  out.p50_latency = nearest_rank_percentile(out.frame_latency, 0.50);
  out.p99_latency = nearest_rank_percentile(out.frame_latency, 0.99);
}

// First frame of a converged tail window (the last steady_window inter-finish
// gaps and the last steady_window + 1 frame latencies agree within steady_tol
// relative of their final values), or -1.
int steady_state_frame(const StreamResult& r, const StreamOptions& opt) {
  const int m = r.frames;
  const int w = opt.steady_window;
  if (m < w + 1) return -1;
  const double gap_ref = r.frame_finish[m - 1] - r.frame_finish[m - 2];
  const double lat_ref = r.frame_latency[m - 1];
  const double gap_tol = opt.steady_tol * std::max(1.0, std::abs(gap_ref));
  const double lat_tol = opt.steady_tol * std::max(1.0, std::abs(lat_ref));
  for (int f = m - w; f < m; ++f) {
    const double gap = r.frame_finish[f] - r.frame_finish[f - 1];
    if (std::abs(gap - gap_ref) > gap_tol) return -1;
    if (std::abs(r.frame_latency[f] - lat_ref) > lat_tol) return -1;
  }
  if (std::abs(r.frame_latency[m - w - 1] - lat_ref) > lat_tol) return -1;
  return m - w;
}

}  // namespace

void validate_stream_options(const StreamOptions& opt, const char* caller) {
  const std::string who(caller);
  if (opt.frames < 1) {
    throw std::invalid_argument(who + ": frames must be >= 1, got " +
                                std::to_string(opt.frames));
  }
  if (!std::isfinite(opt.interval) || opt.interval < 0.0) {
    throw std::invalid_argument(who + ": interval must be finite and >= 0");
  }
  if (std::isnan(opt.arrival_jitter) || opt.arrival_jitter < 0.0 ||
      opt.arrival_jitter >= 1.0) {
    throw std::invalid_argument(
        who + ": arrival_jitter must be in [0, 1) (a gap draw from "
              "[interval(1-j), interval(1+j)] could go negative)");
  }
  if (opt.arrival_jitter > 0.0 && opt.sim.rng == nullptr) {
    throw std::invalid_argument(who + ": arrival_jitter > 0 requires an rng");
  }
  if (opt.steady_window < 1) {
    throw std::invalid_argument(who + ": steady_window must be >= 1");
  }
  if (!std::isfinite(opt.steady_tol) || opt.steady_tol < 0.0) {
    throw std::invalid_argument(who + ": steady_tol must be finite and >= 0");
  }
  validate_sim_options(opt.sim, caller);
}

void simulate_streaming_into(const TaskGraph& g, const DeviceNetwork& n,
                             const Placement& p, const LatencyModel& lat,
                             StreamWorkspace& ws, StreamResult& out,
                             const StreamOptions& opt) {
  validate_stream_options(opt, "simulate_streaming");
  const bool deterministic =
      opt.sim.noise <= 0.0 && opt.arrival_jitter <= 0.0;
  if (!opt.detect_steady_state || !deterministic) {
    run_stream_frames(g, n, p, lat, ws, out, opt, opt.frames);
    return;
  }
  // Deterministic runs re-simulate a doubling prefix from scratch until the
  // tail converges or the full budget is reached. The truncated run is the
  // stream with that many frames (not a prefix of the longer run: a later
  // frame can delay an earlier one through FIFO queueing), which is exactly
  // the steady-state semantics callers asked for.
  int prefix = std::min(opt.frames, std::max(2 * opt.steady_window, 8));
  for (;;) {
    run_stream_frames(g, n, p, lat, ws, out, opt, prefix);
    const int sf = steady_state_frame(out, opt);
    if (sf >= 0) {
      out.steady_frame = sf;
      return;
    }
    if (prefix >= opt.frames) return;  // never converged: steady_frame = -1
    prefix = std::min(opt.frames, 2 * prefix);
  }
}

StreamResult simulate_streaming(const TaskGraph& g, const DeviceNetwork& n,
                                const Placement& p, const LatencyModel& lat,
                                const StreamOptions& opt) {
  StreamWorkspace ws;
  StreamResult out;
  simulate_streaming_into(g, n, p, lat, ws, out, opt);
  return out;
}

double nearest_rank_percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t count = xs.size();
  const double rank = std::ceil(q * static_cast<double>(count));
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  if (idx >= count) idx = count - 1;
  return xs[idx];
}

}  // namespace giph
