#include "sim/schedule_index.hpp"

#include <algorithm>
#include <limits>

namespace giph {

void ScheduleIndex::build(const Schedule& sched, const Placement& p, int num_devices) {
  const int nv = static_cast<int>(sched.tasks.size());
  // Counting sort by device: offsets_[d+1] first holds the count for d, then
  // the exclusive prefix sum, then the insertion cursor while filling.
  offsets_.assign(num_devices + 1, 0);
  for (int v = 0; v < nv; ++v) {
    const int d = p.device_of(v);
    if (d >= 0) ++offsets_[d + 1];
  }
  for (int d = 0; d < num_devices; ++d) offsets_[d + 1] += offsets_[d];
  entries_.resize(offsets_[num_devices]);

  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (int v = 0; v < nv; ++v) {
    const int d = p.device_of(v);
    if (d < 0) continue;
    entries_[cursor_[d]++] = Entry{sched.tasks[v].start, sched.tasks[v].finish};
  }
  for (int d = 0; d < num_devices; ++d) {
    auto first = entries_.begin() + offsets_[d];
    auto last = entries_.begin() + offsets_[d + 1];
    std::sort(first, last,
              [](const Entry& a, const Entry& b) { return a.start < b.start; });
    // Turn finish into a prefix max so "max finish among starts < t" is a
    // single lookup after the binary search.
    double run = -std::numeric_limits<double>::infinity();
    for (auto it = first; it != last; ++it) {
      run = std::max(run, it->max_finish);
      it->max_finish = run;
    }
  }
}

double ScheduleIndex::max_finish_before(int d, double start) const {
  const auto first = entries_.begin() + offsets_[d];
  const auto last = entries_.begin() + offsets_[d + 1];
  // First entry with entry.start >= start; everything before it started
  // strictly earlier.
  const auto it = std::lower_bound(
      first, last, start, [](const Entry& e, double t) { return e.start < t; });
  if (it == first) return -std::numeric_limits<double>::infinity();
  return (it - 1)->max_finish;
}

double earliest_start_on_queued(const Schedule& sched, const TaskGraph& g,
                                const DeviceNetwork& n, const Placement& p,
                                const LatencyModel& lat, const ScheduleIndex& index,
                                int v, int d) {
  double est = earliest_start_on(sched, g, n, p, lat, v, d);
  // Same exclusion rule as the O(V) scan: only tasks starting strictly before
  // v block it; v itself has start == start so strictness drops it too. The
  // prefix max is order-independent, so the result is exactly equal.
  const double busy = index.max_finish_before(d, sched.tasks[v].start);
  return std::max(est, busy);
}

namespace {

// Revalidates the workspace's model caches against the current (g, n, lat)
// stamps, dropping them when anything changed. Returns true when the stamps
// matched (individual rows may still be invalid — comm_src tracks that).
bool revalidate_cache(const TaskGraph& g, const DeviceNetwork& n,
                      const LatencyModel& lat, EstSweepWorkspace& ws) {
  if (ws.g_stamp == g.stamp() && ws.n_stamp == n.stamp() &&
      ws.lat_stamp == lat.stamp()) {
    return true;
  }
  ws.g_stamp = g.stamp();
  ws.n_stamp = n.stamp();
  ws.lat_stamp = lat.stamp();
  ws.comm_src.clear();
  ws.compute_tbl.clear();
  return false;
}

}  // namespace

const std::vector<double>& compute_sweep(const TaskGraph& g, const DeviceNetwork& n,
                                         const LatencyModel& lat,
                                         EstSweepWorkspace& ws) {
  const int nv = g.num_tasks();
  const int nd = n.num_devices();
  const std::size_t want = static_cast<std::size_t>(nv) * nd;
  if (revalidate_cache(g, n, lat, ws) && ws.compute_tbl.size() == want) {
    return ws.compute_tbl;
  }
  ws.compute_tbl.resize(want);
  for (int v = 0; v < nv; ++v) {
    lat.compute_time_row(g, n, v, ws.compute_tbl.data() + static_cast<std::size_t>(v) * nd);
  }
  return ws.compute_tbl;
}

void est_sweep(const Schedule& sched, const TaskGraph& g, const DeviceNetwork& n,
               const Placement& p, const LatencyModel& lat, EstSweepWorkspace& ws) {
  const int nv = g.num_tasks();
  const int nd = n.num_devices();
  const int ne = g.num_edges();
  ws.est.assign(static_cast<std::size_t>(nv) * nd, 0.0);

  // Comm-row cache: a row depends only on (edge, source device, model), so
  // between consecutive sweeps of a search — where one task moved — almost
  // every row (and its nd divisions) is reusable as-is. Rows are validated
  // per edge through comm_src; the stamps guard everything else.
  if (!revalidate_cache(g, n, lat, ws) ||
      ws.comm_rows.size() != static_cast<std::size_t>(ne) * nd ||
      ws.comm_src.size() != static_cast<std::size_t>(ne)) {
    ws.comm_rows.assign(static_cast<std::size_t>(ne) * nd, 0.0);
    ws.comm_src.assign(static_cast<std::size_t>(ne), -1);
  }

  // Parent-arrival terms: one comm-time row per edge, accumulated into the
  // destination task's row. Max over doubles is exact, so accumulation order
  // (here: per task in in-edge order, matching the per-query loop anyway)
  // cannot perturb the result.
  for (int v = 0; v < nv; ++v) {
    double* row = ws.est.data() + static_cast<std::size_t>(v) * nd;
    for (int e : g.in_edges(v)) {
      const int parent = g.edge(e).src;
      const double pf = sched.tasks[parent].finish;
      const int k = p.device_of(parent);
      double* crow = ws.comm_rows.data() + static_cast<std::size_t>(e) * nd;
      if (ws.comm_src[e] != k) {
        lat.comm_time_row(g, n, e, k, crow);
        ws.comm_src[e] = k;
      }
      for (int d = 0; d < nd; ++d) {
        row[d] = std::max(row[d], pf + crow[d]);
      }
    }
  }

  // Device-busy terms: walk tasks in ascending start order keeping a running
  // max finish per device. Every member of a group of equal starts reads the
  // maxes before any member's finish is folded in, which is exactly the
  // per-query "tasks starting strictly before v" rule (v never blocks
  // itself: its own start is never strictly before itself).
  ws.order.resize(nv);
  for (int v = 0; v < nv; ++v) ws.order[v] = v;
  std::sort(ws.order.begin(), ws.order.end(), [&sched](int a, int b) {
    return sched.tasks[a].start < sched.tasks[b].start;
  });
  ws.dev_max.assign(nd, -std::numeric_limits<double>::infinity());
  int i = 0;
  while (i < nv) {
    int j = i;
    const double start = sched.tasks[ws.order[i]].start;
    while (j < nv && sched.tasks[ws.order[j]].start == start) ++j;
    for (int k = i; k < j; ++k) {
      double* row = ws.est.data() + static_cast<std::size_t>(ws.order[k]) * nd;
      for (int d = 0; d < nd; ++d) row[d] = std::max(row[d], ws.dev_max[d]);
    }
    for (int k = i; k < j; ++k) {
      const int v = ws.order[k];
      const int d = p.device_of(v);
      if (d >= 0) ws.dev_max[d] = std::max(ws.dev_max[d], sched.tasks[v].finish);
    }
    i = j;
  }
}

void est_sweep_subset(const Schedule& sched, const TaskGraph& g, const DeviceNetwork& n,
                      const Placement& p, const LatencyModel& lat,
                      const std::vector<int>& subset, EstSweepWorkspace& ws) {
  const int nv = g.num_tasks();
  const int nd = n.num_devices();
  const int ne = g.num_edges();
  ws.est.assign(static_cast<std::size_t>(nv) * nd, 0.0);
  ws.in_subset.assign(nv, 0);
  for (int v : subset) ws.in_subset.at(v) = 1;

  if (!revalidate_cache(g, n, lat, ws) ||
      ws.comm_rows.size() != static_cast<std::size_t>(ne) * nd ||
      ws.comm_src.size() != static_cast<std::size_t>(ne)) {
    ws.comm_rows.assign(static_cast<std::size_t>(ne) * nd, 0.0);
    ws.comm_src.assign(static_cast<std::size_t>(ne), -1);
  }

  // Parent-arrival terms, restricted to subset rows. Identical per-row code
  // path (and comm-row cache) as the full sweep.
  for (int v = 0; v < nv; ++v) {
    if (!ws.in_subset[v]) continue;
    double* row = ws.est.data() + static_cast<std::size_t>(v) * nd;
    for (int e : g.in_edges(v)) {
      const int parent = g.edge(e).src;
      const double pf = sched.tasks[parent].finish;
      const int k = p.device_of(parent);
      double* crow = ws.comm_rows.data() + static_cast<std::size_t>(e) * nd;
      if (ws.comm_src[e] != k) {
        lat.comm_time_row(g, n, e, k, crow);
        ws.comm_src[e] = k;
      }
      for (int d = 0; d < nd; ++d) {
        row[d] = std::max(row[d], pf + crow[d]);
      }
    }
  }

  // Device-busy terms: the walk must still see EVERY task's finish (any task
  // can block a subset task), but only subset rows are updated.
  ws.order.resize(nv);
  for (int v = 0; v < nv; ++v) ws.order[v] = v;
  std::sort(ws.order.begin(), ws.order.end(), [&sched](int a, int b) {
    return sched.tasks[a].start < sched.tasks[b].start;
  });
  ws.dev_max.assign(nd, -std::numeric_limits<double>::infinity());
  int i = 0;
  while (i < nv) {
    int j = i;
    const double start = sched.tasks[ws.order[i]].start;
    while (j < nv && sched.tasks[ws.order[j]].start == start) ++j;
    for (int k = i; k < j; ++k) {
      const int v = ws.order[k];
      if (!ws.in_subset[v]) continue;
      double* row = ws.est.data() + static_cast<std::size_t>(v) * nd;
      for (int d = 0; d < nd; ++d) row[d] = std::max(row[d], ws.dev_max[d]);
    }
    for (int k = i; k < j; ++k) {
      const int v = ws.order[k];
      const int d = p.device_of(v);
      if (d >= 0) ws.dev_max[d] = std::max(ws.dev_max[d], sched.tasks[v].finish);
    }
    i = j;
  }
}

}  // namespace giph
