#include "sim/schedule_index.hpp"

#include <algorithm>
#include <limits>

namespace giph {

void ScheduleIndex::build(const Schedule& sched, const Placement& p, int num_devices) {
  const int nv = static_cast<int>(sched.tasks.size());
  // Counting sort by device: offsets_[d+1] first holds the count for d, then
  // the exclusive prefix sum, then the insertion cursor while filling.
  offsets_.assign(num_devices + 1, 0);
  for (int v = 0; v < nv; ++v) {
    const int d = p.device_of(v);
    if (d >= 0) ++offsets_[d + 1];
  }
  for (int d = 0; d < num_devices; ++d) offsets_[d + 1] += offsets_[d];
  entries_.resize(offsets_[num_devices]);

  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (int v = 0; v < nv; ++v) {
    const int d = p.device_of(v);
    if (d < 0) continue;
    entries_[cursor_[d]++] = Entry{sched.tasks[v].start, sched.tasks[v].finish};
  }
  for (int d = 0; d < num_devices; ++d) {
    auto first = entries_.begin() + offsets_[d];
    auto last = entries_.begin() + offsets_[d + 1];
    std::sort(first, last,
              [](const Entry& a, const Entry& b) { return a.start < b.start; });
    // Turn finish into a prefix max so "max finish among starts < t" is a
    // single lookup after the binary search.
    double run = -std::numeric_limits<double>::infinity();
    for (auto it = first; it != last; ++it) {
      run = std::max(run, it->max_finish);
      it->max_finish = run;
    }
  }
}

double ScheduleIndex::max_finish_before(int d, double start) const {
  const auto first = entries_.begin() + offsets_[d];
  const auto last = entries_.begin() + offsets_[d + 1];
  // First entry with entry.start >= start; everything before it started
  // strictly earlier.
  const auto it = std::lower_bound(
      first, last, start, [](const Entry& e, double t) { return e.start < t; });
  if (it == first) return -std::numeric_limits<double>::infinity();
  return (it - 1)->max_finish;
}

double earliest_start_on_queued(const Schedule& sched, const TaskGraph& g,
                                const DeviceNetwork& n, const Placement& p,
                                const LatencyModel& lat, const ScheduleIndex& index,
                                int v, int d) {
  double est = earliest_start_on(sched, g, n, p, lat, v, d);
  // Same exclusion rule as the O(V) scan: only tasks starting strictly before
  // v block it; v itself has start == start so strictness drops it too. The
  // prefix max is order-independent, so the result is exactly equal.
  const double busy = index.max_finish_before(d, sched.tasks[v].start);
  return std::max(est, busy);
}

}  // namespace giph
