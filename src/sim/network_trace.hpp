#pragma once

#include <vector>

#include "graph/device_network.hpp"

namespace giph {

/// One piecewise-constant segment of a link's condition over time. The
/// segment is active from `time` (inclusive) until the next segment's start;
/// before a link's first segment the link is in its nominal state
/// (bandwidth_factor 1, delay_add 0, drop_prob 0).
///
/// Shape follows webrtc's SimLinkConfig{bw_bps, drop_prob} (SNIPPETS.md §2),
/// expressed relative to the DeviceNetwork's nominal link so one trace can be
/// replayed against many networks:
///  - bandwidth_factor multiplies the link bandwidth (0.5 = half speed);
///  - delay_add is added to the transfer's startup delay at dispatch;
///  - drop_prob inflates the wire (bandwidth-proportional) portion of the
///    transfer by the expected retransmit count 1 / (1 - drop_prob).
struct TraceSegment {
  double time = 0.0;
  double bandwidth_factor = 1.0;
  double delay_add = 0.0;
  double drop_prob = 0.0;
};

/// Schedule of condition changes on one directed link src -> dst.
struct LinkSchedule {
  int src = -1;
  int dst = -1;
  std::vector<TraceSegment> segments;  ///< strictly increasing time
};

/// A piecewise-constant network condition trace: per-link schedules of
/// bandwidth, delay, and drop probability. Consumed by simulate() /
/// simulate_into() via SimOptions::trace; a transfer in flight when a segment
/// boundary passes is split at the breakpoint and its remaining *wire* time
/// rescaled, exactly the way kLinkDegrade rescales in-flight work.
///
/// An empty trace (no link has any segment) is bitwise-equivalent to passing
/// no trace at all.
struct NetworkTrace {
  std::vector<LinkSchedule> links;

  bool empty() const {
    for (const LinkSchedule& l : links) {
      if (!l.segments.empty()) return false;
    }
    return true;
  }

  /// Find-or-create the schedule for directed link src -> dst.
  LinkSchedule& link(int src, int dst) {
    for (LinkSchedule& l : links) {
      if (l.src == src && l.dst == dst) return l;
    }
    links.push_back(LinkSchedule{src, dst, {}});
    return links.back();
  }
};

/// The wire-time multiplier of a segment: 1/bandwidth_factor slows the wire
/// portion down, 1/(1 - drop_prob) pays for expected retransmits. Both the
/// simulator and the independent oracle must inflate wire time with exactly
/// this expression (bitwise).
inline double wire_factor(const TraceSegment& s) {
  return (1.0 / s.bandwidth_factor) / (1.0 - s.drop_prob);
}

/// Throws std::invalid_argument (with the offending link / segment named)
/// when the trace is malformed for network `n`: endpoint out of range or
/// self-link, duplicate (src, dst) schedules, segment times not finite /
/// negative / not strictly increasing, bandwidth_factor not finite-positive,
/// delay_add negative, or drop_prob outside [0, 1).
void validate_network_trace(const NetworkTrace& trace, const DeviceNetwork& n,
                            const char* caller = "validate_network_trace");

}  // namespace giph
