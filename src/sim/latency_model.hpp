#pragma once

#include <map>
#include <utility>

#include "graph/device_network.hpp"
#include "graph/task_graph.hpp"

namespace giph {

/// Expected computation / communication latency model (Appendix B.5).
///
/// Implementations return *expected* times; the simulator applies
/// multiplicative uniform noise on top when requested.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Modification stamp (see graph/stamp.hpp): fresh at construction, bumped
  /// by derived classes whenever their parameters change
  /// (LossAwareLatencyModel::set_drop), never repeated process-wide. Lets
  /// sweep caches key on "same model, same parameters" exactly.
  std::uint64_t stamp() const noexcept { return stamp_; }

  /// Expected execution time w_{v,k} of task v on device k.
  virtual double compute_time(const TaskGraph& g, const DeviceNetwork& n, int v,
                              int k) const = 0;

  /// Expected transmission time c of edge e with its source on device k and
  /// destination on device l. Must be 0 when k == l.
  virtual double comm_time(const TaskGraph& g, const DeviceNetwork& n, int e, int k,
                           int l) const = 0;

  /// The startup (bandwidth-independent) portion of comm_time: the part that
  /// does NOT scale when the link's bandwidth changes. Must be 0 when k == l
  /// and must never exceed comm_time for the same arguments. The simulator's
  /// dynamic-network machinery (NetworkTrace, kLinkDegrade) uses this to
  /// rescale only the wire time of in-flight transfers. The default matches
  /// Eq. 3's DL_kl term.
  virtual double comm_startup(const TaskGraph&, const DeviceNetwork& n, int,
                              int k, int l) const {
    if (k == l) return 0.0;
    return n.delay(k, l);
  }

  /// Fills out[l] = comm_time(g, n, e, k, l) for every destination device l.
  /// Batched form of comm_time for the candidate-scoring sweeps (one virtual
  /// call per edge instead of one per edge-device pair); overrides must stay
  /// bitwise identical to per-element comm_time calls, which this default
  /// guarantees by construction.
  virtual void comm_time_row(const TaskGraph& g, const DeviceNetwork& n, int e,
                             int k, double* out) const {
    const int nd = n.num_devices();
    for (int l = 0; l < nd; ++l) out[l] = comm_time(g, n, e, k, l);
  }

  /// Fills out[k] = compute_time(g, n, v, k) for every device k. Same batched
  /// contract as comm_time_row.
  virtual void compute_time_row(const TaskGraph& g, const DeviceNetwork& n,
                                int v, double* out) const {
    const int nd = n.num_devices();
    for (int k = 0; k < nd; ++k) out[k] = compute_time(g, n, v, k);
  }

 protected:
  void bump_stamp() noexcept { stamp_ = detail::next_structure_stamp(); }

 private:
  std::uint64_t stamp_ = detail::next_structure_stamp();
};

/// The paper's latency model (Eqs. 2-3), extended with the case-study affine
/// term: w_{v,k} = C_v / SP_k + S_k and c = DL_kl + B_e / BW_kl.
/// Synthetic devices have S_k = 0, reducing to Eq. 2 exactly.
class DefaultLatencyModel final : public LatencyModel {
 public:
  double compute_time(const TaskGraph& g, const DeviceNetwork& n, int v,
                      int k) const override {
    return g.task(v).compute / n.device(k).speed + n.device(k).startup;
  }

  double comm_time(const TaskGraph& g, const DeviceNetwork& n, int e, int k,
                   int l) const override {
    if (k == l) return 0.0;
    return n.delay(k, l) + g.edge(e).bytes / n.bandwidth(k, l);
  }

  // Same expression as comm_time evaluated over the raw link rows (the same
  // stored doubles delay()/bandwidth() return), without per-element bounds
  // checks or virtual dispatch, so the division loop pipelines. The diagonal
  // placeholder (delay 0, bandwidth 1) makes the unconditional pass safe; the
  // l == k slot is then overwritten with comm_time's exact 0.0. Bitwise
  // identical to per-element comm_time calls by construction.
  void comm_time_row(const TaskGraph& g, const DeviceNetwork& n, int e, int k,
                     double* out) const override {
    const double bytes = g.edge(e).bytes;
    const int nd = n.num_devices();
    const double* dl = n.delay_row(k);
    const double* bw = n.bandwidth_row(k);
    for (int l = 0; l < nd; ++l) out[l] = dl[l] + bytes / bw[l];
    out[k] = 0.0;
  }

  // Same expression as compute_time (bitwise identical by construction).
  void compute_time_row(const TaskGraph& g, const DeviceNetwork& n, int v,
                        double* out) const override {
    const double compute = g.task(v).compute;
    const int nd = n.num_devices();
    for (int k = 0; k < nd; ++k) {
      out[k] = compute / n.device(k).speed + n.device(k).startup;
    }
  }
};

/// Latency model backed by a measured (task kind, device type) -> time table,
/// as one would obtain from profiling (e.g. the paper's Table 1). Task kind is
/// read from Task::requires_hw-independent metadata: the table is keyed by the
/// task's integer `kind` supplied at construction via a per-task kind vector.
class TableLatencyModel final : public LatencyModel {
 public:
  /// `task_kind[v]` gives the profile row for task v; `table[{kind, type}]`
  /// gives the measured mean execution time.
  TableLatencyModel(std::vector<int> task_kind, std::map<std::pair<int, int>, double> table)
      : task_kind_(std::move(task_kind)), table_(std::move(table)) {}

  double compute_time(const TaskGraph&, const DeviceNetwork& n, int v,
                      int k) const override {
    return table_.at({task_kind_.at(v), n.device(k).type});
  }

  double comm_time(const TaskGraph& g, const DeviceNetwork& n, int e, int k,
                   int l) const override {
    if (k == l) return 0.0;
    return n.delay(k, l) + g.edge(e).bytes / n.bandwidth(k, l);
  }

 private:
  std::vector<int> task_kind_;
  std::map<std::pair<int, int>, double> table_;
};

/// Decorator inflating a base model's comm time by the expected retransmit
/// count of a lossy link (the paper's §3 "very high communication losses"
/// scenario). With static per-link drop probability p, each wire transmission
/// succeeds independently with probability 1 - p, so the expected number of
/// transmissions is the geometric mean 1 / (1 - p); only the wire
/// (bandwidth-proportional) portion of Eq. 3 is retransmitted - the startup
/// delay is paid once:
///
///   c_loss = DL_kl + (B_e / BW_kl) / (1 - p_kl)
///
/// Links with p <= 0 return the base model's comm_time value *unchanged*
/// (same expression, bitwise), so an all-zero drop table reduces exactly to
/// the base model. The base model must outlive this decorator.
///
/// For time-varying loss use NetworkTrace::drop_prob instead, which applies
/// the same 1/(1-p) wire inflation piecewise inside the event core.
class LossAwareLatencyModel final : public LatencyModel {
 public:
  LossAwareLatencyModel(const LatencyModel& base, int num_devices)
      : base_(&base), m_(num_devices),
        drop_(static_cast<std::size_t>(num_devices) * num_devices, 0.0) {}

  /// Sets the drop probability of directed link k -> l. Throws
  /// std::invalid_argument unless 0 <= p < 1 and k != l are in range.
  void set_drop(int k, int l, double p);

  double drop(int k, int l) const { return drop_[static_cast<std::size_t>(k) * m_ + l]; }

  double compute_time(const TaskGraph& g, const DeviceNetwork& n, int v,
                      int k) const override {
    return base_->compute_time(g, n, v, k);
  }

  double comm_time(const TaskGraph& g, const DeviceNetwork& n, int e, int k,
                   int l) const override {
    const double c = base_->comm_time(g, n, e, k, l);
    if (k == l) return c;
    const double p = drop(k, l);
    if (p <= 0.0) return c;
    const double s = base_->comm_startup(g, n, e, k, l);
    return s + (c - s) / (1.0 - p);
  }

  double comm_startup(const TaskGraph& g, const DeviceNetwork& n, int e, int k,
                      int l) const override {
    return base_->comm_startup(g, n, e, k, l);
  }

 private:
  const LatencyModel* base_;
  int m_;
  std::vector<double> drop_;
};

}  // namespace giph
