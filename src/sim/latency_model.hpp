#pragma once

#include <map>
#include <utility>

#include "graph/device_network.hpp"
#include "graph/task_graph.hpp"

namespace giph {

/// Expected computation / communication latency model (Appendix B.5).
///
/// Implementations return *expected* times; the simulator applies
/// multiplicative uniform noise on top when requested.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Expected execution time w_{v,k} of task v on device k.
  virtual double compute_time(const TaskGraph& g, const DeviceNetwork& n, int v,
                              int k) const = 0;

  /// Expected transmission time c of edge e with its source on device k and
  /// destination on device l. Must be 0 when k == l.
  virtual double comm_time(const TaskGraph& g, const DeviceNetwork& n, int e, int k,
                           int l) const = 0;
};

/// The paper's latency model (Eqs. 2-3), extended with the case-study affine
/// term: w_{v,k} = C_v / SP_k + S_k and c = DL_kl + B_e / BW_kl.
/// Synthetic devices have S_k = 0, reducing to Eq. 2 exactly.
class DefaultLatencyModel final : public LatencyModel {
 public:
  double compute_time(const TaskGraph& g, const DeviceNetwork& n, int v,
                      int k) const override {
    return g.task(v).compute / n.device(k).speed + n.device(k).startup;
  }

  double comm_time(const TaskGraph& g, const DeviceNetwork& n, int e, int k,
                   int l) const override {
    if (k == l) return 0.0;
    return n.delay(k, l) + g.edge(e).bytes / n.bandwidth(k, l);
  }
};

/// Latency model backed by a measured (task kind, device type) -> time table,
/// as one would obtain from profiling (e.g. the paper's Table 1). Task kind is
/// read from Task::requires_hw-independent metadata: the table is keyed by the
/// task's integer `kind` supplied at construction via a per-task kind vector.
class TableLatencyModel final : public LatencyModel {
 public:
  /// `task_kind[v]` gives the profile row for task v; `table[{kind, type}]`
  /// gives the measured mean execution time.
  TableLatencyModel(std::vector<int> task_kind, std::map<std::pair<int, int>, double> table)
      : task_kind_(std::move(task_kind)), table_(std::move(table)) {}

  double compute_time(const TaskGraph&, const DeviceNetwork& n, int v,
                      int k) const override {
    return table_.at({task_kind_.at(v), n.device(k).type});
  }

  double comm_time(const TaskGraph& g, const DeviceNetwork& n, int e, int k,
                   int l) const override {
    if (k == l) return 0.0;
    return n.delay(k, l) + g.edge(e).bytes / n.bandwidth(k, l);
  }

 private:
  std::vector<int> task_kind_;
  std::map<std::pair<int, int>, double> table_;
};

}  // namespace giph
