#pragma once

#include <functional>

#include "sim/simulator.hpp"

namespace giph {

/// Denominator of the Schedule Length Ratio: the sum over CP_MIN (the
/// critical path computed from each task's minimum feasible compute cost) of
/// those minimum compute costs (Topcuoglu et al. normalization, Section 5).
double slr_denominator(const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat);

/// SLR = makespan / slr_denominator. Lower is better; >= 1 would hold for an
/// ideal zero-communication schedule.
double slr(double makespan_value, double denominator);

/// Total cost objective of Appendix B.8: sum of each task's compute time plus
/// each data link's communication time under placement p.
double total_cost(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                  const LatencyModel& lat);

/// A performance criterion rho(M | G, N): smaller is better. The RL reward is
/// rho(s_t) - rho(s_{t+1}).
using Objective =
    std::function<double(const TaskGraph&, const DeviceNetwork&, const Placement&)>;

/// Makespan objective bound to a latency model (expected, noise-free).
Objective makespan_objective(const LatencyModel& lat);

/// Noisy makespan objective: each evaluation simulates one realization with
/// multiplicative uniform noise sigma using `rng`.
Objective noisy_makespan_objective(const LatencyModel& lat, double sigma,
                                   std::mt19937_64& rng);

/// Total-cost objective of Appendix B.8.
Objective total_cost_objective(const LatencyModel& lat);

}  // namespace giph
