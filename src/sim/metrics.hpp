#pragma once

#include <functional>

#include "sim/simulator.hpp"
#include "sim/stream.hpp"

namespace giph {

/// Denominator of the Schedule Length Ratio: the sum over CP_MIN (the
/// critical path computed from each task's minimum feasible compute cost) of
/// those minimum compute costs (Topcuoglu et al. normalization, Section 5).
double slr_denominator(const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat);

/// SLR = makespan / slr_denominator. Lower is better; >= 1 would hold for an
/// ideal zero-communication schedule.
double slr(double makespan_value, double denominator);

/// Total cost objective of Appendix B.8: sum of each task's compute time plus
/// each data link's communication time under placement p.
double total_cost(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                  const LatencyModel& lat);

/// A performance criterion rho(M | G, N): smaller is better. The RL reward is
/// rho(s_t) - rho(s_{t+1}).
///
/// Legacy form: evaluators that carry their own simulation (or need none).
/// Hot paths use ScheduleObjective below, which receives the schedule the
/// caller already computed instead of re-simulating.
using Objective =
    std::function<double(const TaskGraph&, const DeviceNetwork&, const Placement&)>;

/// Schedule-aware performance criterion: receives the noise-free Schedule the
/// search environment just simulated for placement p, so makespan-style
/// objectives read it instead of paying a second simulation per step. Only
/// objectives that deliberately re-sample (e.g. noisy makespan) simulate
/// internally.
using ScheduleObjective = std::function<double(
    const TaskGraph&, const DeviceNetwork&, const Placement&, const Schedule&)>;

/// Adapts a legacy (g, n, p) objective to the schedule-aware signature by
/// ignoring the schedule. The wrapped objective keeps whatever simulation
/// cost it had, so prefer native ScheduleObjective factories on hot paths.
ScheduleObjective schedule_objective(Objective legacy);

/// Evaluates a schedule-aware objective standalone (one noise-free simulation
/// to produce the schedule it consumes). For callers outside a search
/// environment, e.g. scoring a single placement.
double evaluate_objective(const ScheduleObjective& obj, const TaskGraph& g,
                          const DeviceNetwork& n, const Placement& p,
                          const LatencyModel& lat);

/// Makespan objective (expected, noise-free): reads the provided schedule,
/// zero extra simulations.
ScheduleObjective makespan_objective(const LatencyModel& lat);

/// Noisy makespan objective: each evaluation simulates one realization with
/// multiplicative uniform noise sigma using `rng` (ignoring the noise-free
/// schedule by design — the noise must be re-sampled).
ScheduleObjective noisy_makespan_objective(const LatencyModel& lat, double sigma,
                                           std::mt19937_64& rng);

/// Total-cost objective of Appendix B.8 (closed form; no simulation).
ScheduleObjective total_cost_objective(const LatencyModel& lat);

/// Streaming p99 tail-latency objective: each evaluation runs its own
/// simulate_streaming (the provided one-shot schedule cannot answer
/// cross-frame questions) and returns StreamResult::p99_latency. `stream` is
/// captured by value; its sim.rng, if set, must outlive the objective and is
/// consumed per evaluation (jitter/noise re-sampled, like noisy makespan).
/// Copyable with shared internal buffers: single-threaded use, one objective
/// per worker.
ScheduleObjective streaming_p99_objective(const LatencyModel& lat,
                                          StreamOptions stream);

/// Streaming throughput objective, as a minimized quantity: returns
/// 1 / StreamResult::throughput (the mean inter-frame completion period;
/// 0 when throughput is infinite). Same evaluation contract as
/// streaming_p99_objective.
ScheduleObjective streaming_throughput_objective(const LatencyModel& lat,
                                                 StreamOptions stream);

}  // namespace giph
