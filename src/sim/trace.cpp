#include "sim/trace.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <sstream>

namespace giph {

void write_schedule_csv(std::ostream& out, const TaskGraph& g, const DeviceNetwork& n,
                        const Placement& p, const Schedule& sched) {
  // max_digits10 makes every time round-trip to the exact double: the default
  // ostream precision (6) truncates, which silently disqualified CSV traces
  // as exact fixtures. Restored below so the caller's stream is unchanged.
  const auto saved_precision = out.precision(std::numeric_limits<double>::max_digits10);
  out << "kind,id,name,device,peer_device,start,finish\n";
  for (int v = 0; v < g.num_tasks(); ++v) {
    out << "task," << v << "," << (g.task(v).name.empty() ? "t" + std::to_string(v)
                                                          : g.task(v).name)
        << "," << p.device_of(v) << ",," << sched.tasks[v].start << ","
        << sched.tasks[v].finish << "\n";
  }
  for (int e = 0; e < g.num_edges(); ++e) {
    const DataLink& link = g.edge(e);
    out << "edge," << e << "," << link.src << "->" << link.dst << ","
        << p.device_of(link.src) << "," << p.device_of(link.dst) << ","
        << sched.edge_start[e] << "," << sched.edge_finish[e] << "\n";
  }
  out.precision(saved_precision);
  (void)n;
}

void write_stream_csv(std::ostream& out, const StreamResult& result) {
  // Same exact-fixture contract as write_schedule_csv: max_digits10 so every
  // latency round-trips to the exact double, precision restored on return.
  const auto saved_precision = out.precision(std::numeric_limits<double>::max_digits10);
  out << "frame,arrival,finish,latency\n";
  for (int f = 0; f < result.frames; ++f) {
    out << f << "," << result.frame_arrival[f] << "," << result.frame_finish[f]
        << "," << result.frame_latency[f] << "\n";
  }
  out << "summary," << result.frames << "," << result.steady_frame << ","
      << result.throughput << "," << result.p50_latency << ","
      << result.p99_latency << "," << result.makespan << "\n";
  out.precision(saved_precision);
}

std::string ascii_gantt(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                        const Schedule& sched, int width) {
  std::ostringstream out;
  const double span = std::max(sched.makespan, 1e-12);
  const double per_char = span / std::max(1, width);
  out << "time: 0 .. " << sched.makespan << " (" << per_char << " per column)\n";
  for (int d = 0; d < n.num_devices(); ++d) {
    std::string row(width, '.');
    for (int v = 0; v < g.num_tasks(); ++v) {
      if (p.device_of(v) != d) continue;
      int c0 = static_cast<int>(sched.tasks[v].start / span * width);
      int c1 = static_cast<int>(sched.tasks[v].finish / span * width);
      c0 = std::clamp(c0, 0, width - 1);
      c1 = std::clamp(c1, c0 + 1, width);
      const char mark = static_cast<char>('A' + v % 26);
      for (int c = c0; c < c1; ++c) row[c] = mark;
    }
    const std::string label = n.device(d).name.empty() ? "d" + std::to_string(d)
                                                       : n.device(d).name;
    out << label;
    for (std::size_t k = label.size(); k < 10; ++k) out << ' ';
    out << '|' << row << "|\n";
  }
  return out.str();
}

}  // namespace giph
