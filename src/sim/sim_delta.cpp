// simulate_delta(): incremental re-simulation of a single-task move.
//
// Correctness rests on one structural fact about the event core: a task that
// is runnable but not yet started is inert. It displaces nothing — pops ahead
// of it in the FIFO are unaffected, and a device never sits idle with a
// non-empty queue outside event processing — so moving task m changes nothing
// observable before
//
//   T0 = min(prev start of m, min over in-edges of prev parent finish)
//
// (every input transfer of m dispatches at a parent finish >= T0, and m
// itself starts at >= T0 on either device). The previous run and the new run
// are therefore identical, event for event, strictly before T0; this file
// rebuilds the simulator state at T0 directly from the previous schedule plus
// the DeltaSimState bookkeeping and replays only the suffix through the same
// SimEngine that full runs use.
//
// Determinism: events tie-break on creation seq. Pending events that cross T0
// are re-seeded with their original recorded seqs, and replay-created events
// number from the previous run's final seq — every pending seq sorts below
// every replay seq, and replay creation order matches the true full run's
// suffix creation order, so tie-breaking is order-isomorphic to the full run
// (and stays so across chained replays; runnable ranks follow the same
// scheme). Anything this argument does not cover falls back to a full run.

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/sim_engine.hpp"
#include "sim/simulator.hpp"

namespace giph {

DeltaSimResult simulate_delta(const TaskGraph& g, const DeviceNetwork& n,
                              const Placement& p, int moved_task,
                              const LatencyModel& lat, SimWorkspace& ws,
                              const Schedule& prev, DeltaSimState& ds, Schedule& out,
                              const SimOptions& opt) {
  validate_sim_options(opt, "simulate_delta");
  const int nv = g.num_tasks();
  const int ne = g.num_edges();
  const int nd = n.num_devices();
  if (moved_task < 0 || moved_task >= nv) {
    throw std::invalid_argument("simulate_delta: moved_task out of range");
  }
  if (&prev == &out) {
    throw std::invalid_argument("simulate_delta: prev must not alias out");
  }
  // Only the moved task can have changed device; the rest of the placement
  // was validated by the run that produced `prev`.
  if (!device_feasible(g, n, moved_task, p.device_of(moved_task))) {
    throw std::invalid_argument("simulate: infeasible placement");
  }
  const SharedLinkMap* shared = opt.shared_links;
  if (shared != nullptr && shared->num_devices != nd) {
    throw std::invalid_argument(
        "simulate: shared_links was built for " +
        std::to_string(shared->num_devices) + " devices but the network has " +
        std::to_string(nd));
  }

  const auto fall_back = [&]() {
    detail::bump_delta_fallback_count();
    simulate_into(g, n, p, lat, ws, out, opt, &ds);
    return DeltaSimResult::kFellBack;
  };

  // With noise, realized durations are drawn in event order from one stream:
  // a replay cannot reposition the stream, so only the full path reproduces
  // the draw order.
  if (!ds.valid || opt.noise > 0.0) return fall_back();
  if (static_cast<int>(prev.tasks.size()) != nv ||
      static_cast<int>(prev.edge_start.size()) != ne ||
      static_cast<int>(prev.edge_finish.size()) != ne ||
      static_cast<int>(ds.runnable_order.size()) != nv ||
      static_cast<int>(ds.task_event_seq.size()) != nv ||
      static_cast<int>(ds.edge_event_seq.size()) != ne) {
    return fall_back();
  }
  // A moved entry task is runnable at t = 0 on its new device: dirty from the
  // start, nothing to reuse.
  if (g.in_degree(moved_task) == 0) return fall_back();

  double t0 = prev.tasks[moved_task].start;
  for (int e : g.in_edges(moved_task)) {
    t0 = std::min(t0, prev.tasks[g.edge(e).src].finish);
  }
  if (!(t0 > 0.0)) return fall_back();

  const NetworkTrace* trace =
      (opt.trace != nullptr && !opt.trace->empty()) ? opt.trace : nullptr;
  if (trace != nullptr) {
    validate_network_trace(*trace, n, "simulate_delta");
    if (!ds.trace_recorded ||
        static_cast<int>(ds.edge_final_version.size()) != ne) {
      return fall_back();
    }
    // Breakpoint rescales do not move the NIC / link reservations made at
    // dispatch, so those timelines cannot be rebuilt from finish times once a
    // trace is active alongside a contention model.
    if (opt.serialize_transfers || shared != nullptr) return fall_back();
    // A breakpoint inside the replayed window would have to re-fire with its
    // original seq against a partially replayed in-flight set; not worth
    // modeling. (Segments at time <= 0 seed state and never become events.)
    for (const LinkSchedule& ls : trace->links) {
      for (const TraceSegment& seg : ls.segments) {
        if (seg.time > 0.0 && seg.time >= t0) return fall_back();
      }
    }
  } else if (ds.trace_recorded) {
    return fall_back();  // options changed mid-chain; ds cannot be trusted
  }

  // Count the unaffected prefix; a tiny one is not worth the O(V + E)
  // reconstruction below.
  int completed = 0;
  for (const TaskTiming& t : prev.tasks) {
    if (t.finish < t0) ++completed;
  }
  if (completed < ds.min_prefix_fraction * nv) return fall_back();

  detail::bump_delta_simulation_count();
  ds.valid = false;  // a mid-replay throw leaves ds unusable

  // ---- reconstruct the simulator state at T0 -----------------------------
  // The prefix of the previous schedule is the prefix of the new one; replay
  // overwrites every suffix value.
  out.tasks.assign(prev.tasks.begin(), prev.tasks.end());
  out.edge_start.assign(prev.edge_start.begin(), prev.edge_start.end());
  out.edge_finish.assign(prev.edge_finish.begin(), prev.edge_finish.end());
  out.makespan = 0.0;

  // An input counts as arrived iff its transfer finished strictly before T0
  // (a transfer-done event at exactly T0 is replayed).
  ws.remaining_inputs.assign(nv, 0);
  for (int e = 0; e < ne; ++e) {
    if (prev.edge_finish[e] >= t0) ++ws.remaining_inputs[g.edge(e).dst];
  }

  if (static_cast<int>(ws.fifo.size()) < nd) ws.fifo.resize(nd);
  for (int d = 0; d < nd; ++d) ws.fifo[d].clear();
  ws.running.assign(nd, 0);
  ws.heap.clear();

  // Tasks mid-execution at T0 keep their recorded task-done events. The moved
  // task never lands here: its previous start is >= T0 by construction, so
  // its (possibly changed) device assignment is never consulted for the
  // prefix.
  int running_total = 0;
  for (int v = 0; v < nv; ++v) {
    const TaskTiming& t = prev.tasks[v];
    if (t.start < t0 && t.finish >= t0) {
      ++ws.running[p.device_of(v)];
      ++running_total;
      ws.heap.push_back(detail::SimEvent{t.finish, ds.task_event_seq[v],
                                         detail::kTaskDone, v, 0});
    }
  }

  // Queued-but-unstarted tasks: runnable before T0 (all inputs arrived, i.e.
  // remaining_inputs == 0) yet scheduled to start at or after it. Re-queue
  // them in recorded runnable order; the moved task is excluded automatically
  // (its inputs all arrive >= T0).
  auto& seed = ds.runnable_scratch;
  seed.clear();
  for (int v = 0; v < nv; ++v) {
    if (prev.tasks[v].start >= t0 && ws.remaining_inputs[v] == 0) {
      seed.emplace_back(ds.runnable_order[v], v);
    }
  }
  std::sort(seed.begin(), seed.end());
  for (const auto& [rank, v] : seed) ws.fifo[p.device_of(v)].push_back(v);

  // NIC / shared-link reservations: each dispatch reserves until start + dur
  // == the transfer's finish (no trace here, so finishes never move), and
  // reservations only grow, so the running max over prefix-dispatched
  // transfers is the exact timeline state. A transfer is prefix-dispatched
  // iff its producer finished before T0.
  ws.nic_free.assign(nd, 0.0);
  if (shared != nullptr) ws.link_free.assign(shared->num_links, 0.0);
  if (opt.serialize_transfers || shared != nullptr) {
    for (int e = 0; e < ne; ++e) {
      if (prev.tasks[g.edge(e).src].finish >= t0) continue;
      const int k = p.device_of(g.edge(e).src);
      const int l = p.device_of(g.edge(e).dst);
      if (k == l) continue;
      if (opt.serialize_transfers) {
        ws.nic_free[k] = std::max(ws.nic_free[k], prev.edge_finish[e]);
      }
      if (shared != nullptr) {
        for (const int li : shared->links_on(k, l)) {
          ws.link_free[li] = std::max(ws.link_free[li], prev.edge_finish[e]);
        }
      }
    }
  }

  if (trace != nullptr) {
    const int nl = static_cast<int>(trace->links.size());
    ws.trace_link.assign(static_cast<std::size_t>(nd) * nd, -1);
    ws.trace_cur.assign(nl, TraceSegment{});
    ws.trace_factor.assign(nl, 1.0);
    // Every breakpoint fired in the prefix (checked above), so each link's
    // state is simply its last segment, and the recorded end-of-run versions
    // are the versions at T0.
    ws.edge_version.assign(ds.edge_final_version.begin(),
                           ds.edge_final_version.end());
    ws.edge_finish_at.assign(ne, -1.0);
    ws.edge_wire_begin.assign(ne, 0.0);
    ws.edge_wire_factor.assign(ne, 1.0);
    ws.edge_inflight.assign(ne, 0);
    for (int li = 0; li < nl; ++li) {
      const LinkSchedule& ls = trace->links[li];
      if (ls.segments.empty()) continue;
      ws.trace_link[static_cast<std::size_t>(ls.src) * nd + ls.dst] = li;
      for (const TraceSegment& seg : ls.segments) {
        ws.trace_cur[li] = seg;
        ws.trace_factor[li] = wire_factor(seg);
      }
    }
  }

  // Transfers in flight at T0: dispatched in the prefix, arriving in the
  // suffix. Their transfer-done events cross the boundary with their recorded
  // seqs (and, under a trace, their surviving versions; superseded stale
  // events are dropped — popping one is a no-op anyway).
  for (int e = 0; e < ne; ++e) {
    if (prev.tasks[g.edge(e).src].finish < t0 && prev.edge_finish[e] >= t0) {
      if (trace != nullptr) {
        ws.edge_inflight[e] = 1;
        ws.edge_finish_at[e] = prev.edge_finish[e];
        // wire_begin / wire_factor are only read at breakpoints, none of
        // which remain; keep them deterministic regardless.
        ws.edge_wire_begin[e] = prev.edge_start[e];
      }
      ws.heap.push_back(detail::SimEvent{
          prev.edge_finish[e], ds.edge_event_seq[e], detail::kTransferDone, e,
          trace != nullptr ? ws.edge_version[e] : 0});
    }
  }
  std::make_heap(ws.heap.begin(), ws.heap.end(), detail::EventLater{});

  // ---- replay the suffix --------------------------------------------------
  detail::SimEngine eng{g,     n,      p,       lat, ws, out, opt,
                        trace, shared, nullptr, &ds, nd};
  eng.seq = ds.total_seq;
  eng.completed = completed;
  eng.runnable_rank = ds.next_runnable_rank;
  eng.run();
  eng.finalize("simulate_delta");
  return DeltaSimResult::kReplayed;
}

}  // namespace giph
