#pragma once

#include "sim/simulator.hpp"

namespace giph {

/// Options for iterated-graph (streaming) execution: F frames of the same
/// placed task graph enter the system, frame f arriving `interval` time units
/// after frame f-1 (optionally jittered), and pipeline through the FIFO
/// devices. NIC serialization, shared-link contention, traces, and noise
/// (SimOptions `sim`) apply across frame boundaries exactly as within one.
struct StreamOptions {
  int frames = 1;       ///< F >= 1; 1 reduces bitwise to simulate()
  double interval = 0.0;  ///< inter-arrival gap Delta-t (>= 0)
  /// Multiplicative jitter on each gap: gap_f drawn uniformly from
  /// [interval * (1 - j), interval * (1 + j)] using sim.rng. All F - 1 gap
  /// draws happen up front in frame order, before any simulation draw, so
  /// F = 1 leaves the rng stream untouched. Must be in [0, 1).
  double arrival_jitter = 0.0;
  SimOptions sim;  ///< noise / serialization / trace / shared links
  /// Terminate early once per-frame completion-time deltas converge: simulate
  /// a short prefix, check whether the last `steady_window` inter-finish gaps
  /// and frame latencies agree within `steady_tol` (relative), and double the
  /// prefix until they do or `frames` is reached. Only effective for
  /// deterministic runs (noise == 0, arrival_jitter == 0); noisy or jittered
  /// runs always simulate the full F frames.
  bool detect_steady_state = false;
  int steady_window = 4;
  double steady_tol = 1e-9;
};

/// Throws std::invalid_argument when `opt` is unusable: frames < 1, negative
/// or non-finite interval, arrival_jitter outside [0, 1) or > 0 without an
/// rng, a bad steady-state window/tolerance, or invalid embedded SimOptions.
void validate_stream_options(const StreamOptions& opt, const char* caller);

/// Result of one streaming run. `schedule` covers the frame-replicated
/// instance: task f * V + v is frame f's copy of base task v, edge f * E + e
/// frame f's copy of base edge e (no cross-frame edges).
struct StreamResult {
  Schedule schedule;  ///< replicated: frames * V tasks, frames * E edges
  std::vector<double> frame_arrival;  ///< per frame: when it entered ([0] == 0)
  std::vector<double> frame_finish;   ///< per frame: max task finish (>= arrival)
  std::vector<double> frame_latency;  ///< per frame: finish - arrival
  int frames = 0;        ///< frames actually simulated (<= StreamOptions::frames)
  int steady_frame = -1; ///< first frame of the converged tail window, or -1
  /// frames / (last frame finish - first frame finish) for frames > 1
  /// (1 / frame_latency[0] for a single frame); +infinity on a zero span.
  double throughput = 0.0;
  double p50_latency = 0.0;  ///< nearest-rank percentile of frame_latency
  double p99_latency = 0.0;
  double makespan = 0.0;  ///< schedule.makespan of the whole replicated run
};

/// Reusable buffers for simulate_streaming_into(): the inner SimWorkspace
/// plus the frame-replicated graph/placement, cached on (graph stamp,
/// frames) so objective evaluations over one instance rebuild nothing. Not
/// shareable between concurrent simulations (one per thread).
struct StreamWorkspace {
  SimWorkspace sim;
  TaskGraph replicated;
  Placement replicated_placement;
  std::vector<int> entries;  ///< base-graph entry task ids, ascending
  std::uint64_t cached_graph_stamp = 0;
  int cached_frames = -1;
};

/// Simulates F frames of (g, n, p) entering every `interval` time units and
/// pipelining through the FIFO devices (frames queue behind earlier frames'
/// work; NIC and shared-link reservations carry across frame boundaries).
/// The latency model is consulted with *base* task/edge ids, so profile-table
/// models work unchanged. With frames == 1 the returned schedule is bitwise
/// identical to simulate(g, n, p, lat, opt.sim).
///
/// Throws like simulate() plus validate_stream_options().
StreamResult simulate_streaming(const TaskGraph& g, const DeviceNetwork& n,
                                const Placement& p, const LatencyModel& lat,
                                const StreamOptions& opt = {});

/// Allocation-amortizing core of simulate_streaming(): writes into `out`
/// reusing `ws` (bitwise identical to simulate_streaming for the same
/// inputs). Used by the streaming objectives on search hot paths.
void simulate_streaming_into(const TaskGraph& g, const DeviceNetwork& n,
                             const Placement& p, const LatencyModel& lat,
                             StreamWorkspace& ws, StreamResult& out,
                             const StreamOptions& opt = {});

/// Nearest-rank percentile (q in [0, 1]): the ceil(q * n)-th smallest value,
/// no interpolation — the convention StreamResult's p50/p99 use (an observed
/// frame latency, never a blend of two). Returns 0 for an empty sample.
double nearest_rank_percentile(std::vector<double> xs, double q);

}  // namespace giph
