#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <string>

namespace giph {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool finite_nonneg(double x) { return std::isfinite(x) && x >= 0.0; }

/// A fault event expanded onto the timeline: transient effects become an
/// apply action at `time` and a revert action at `until`.
struct FaultAction {
  enum Type { kCrash, kLeave, kSlowApply, kSlowRevert, kLinkApply, kLinkRevert };
  double time = 0.0;
  Type type = kCrash;
  int device = -1;
  int src = -1, dst = -1;
  double factor = 1.0;
  double delay_add = 0.0;
};

std::vector<FaultAction> expand_plan(const FaultPlan& plan, int num_devices) {
  std::vector<FaultAction> actions;
  for (const FaultEvent& e : plan.events) {
    // Joins and events targeting joined devices cannot affect a fixed
    // placement over the base network; they matter for post_fault_network().
    if (e.kind == FaultKind::kDeviceJoin) continue;
    if (e.device >= num_devices || e.link_src >= num_devices || e.link_dst >= num_devices) {
      continue;
    }
    switch (e.kind) {
      case FaultKind::kDeviceCrash:
        actions.push_back({e.time, FaultAction::kCrash, e.device});
        break;
      case FaultKind::kDeviceLeave:
        actions.push_back({e.time, FaultAction::kLeave, e.device});
        break;
      case FaultKind::kSlowdown:
        actions.push_back({e.time, FaultAction::kSlowApply, e.device, -1, -1, e.factor});
        if (e.until < kInf) {
          actions.push_back({e.until, FaultAction::kSlowRevert, e.device, -1, -1, e.factor});
        }
        break;
      case FaultKind::kLinkDegrade:
        actions.push_back({e.time, FaultAction::kLinkApply, -1, e.link_src, e.link_dst,
                           e.factor, e.delay_add});
        if (e.until < kInf) {
          actions.push_back({e.until, FaultAction::kLinkRevert, -1, e.link_src,
                             e.link_dst, e.factor, e.delay_add});
        }
        break;
      case FaultKind::kDeviceJoin:
        break;
    }
  }
  std::stable_sort(actions.begin(), actions.end(),
                   [](const FaultAction& a, const FaultAction& b) { return a.time < b.time; });
  return actions;
}

enum class EventKind { kTaskDone, kTransferDone, kFault };

struct Event {
  double time;
  long seq;  // creation order, breaks time ties deterministically
  EventKind kind;
  int id;       // task id, edge id, or fault-action index
  int version;  // rescaled task/transfer events invalidate older versions
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

// Fault actions break time ties *after* every simulation event created so
// far: a task finishing exactly at crash time counts as completed.
constexpr long kFaultSeqBase = std::numeric_limits<long>::max() / 2;

double realize(double expected, const SimOptions& opt) {
  if (opt.noise <= 0.0) return expected;
  std::uniform_real_distribution<double> d(expected * (1.0 - opt.noise),
                                           expected * (1.0 + opt.noise));
  return d(*opt.rng);
}

}  // namespace

namespace {

/// Error prefix naming the event so the caller can find and fix it:
/// "fault plan event 3 (crash of device 9 at t=30): ...".
[[noreturn]] void reject_event(const FaultEvent& e, std::size_t index,
                               const std::string& what) {
  std::ostringstream out;
  out << "fault plan event " << index << " (" << describe(e) << "): " << what;
  throw std::invalid_argument(out.str());
}

}  // namespace

void validate_fault_plan(const FaultPlan& plan, const DeviceNetwork& n) {
  // Device ids may reference devices added by earlier (time-ordered) joins.
  int devices = n.num_devices();
  std::vector<std::size_t> by_time(plan.events.size());
  for (std::size_t i = 0; i < by_time.size(); ++i) by_time[i] = i;
  std::stable_sort(by_time.begin(), by_time.end(), [&](std::size_t a, std::size_t b) {
    return plan.events[a].time < plan.events[b].time;
  });
  auto device_range = [&](int d) {
    std::ostringstream out;
    out << "device id " << d << " out of range [0, " << devices
        << ") (network has " << n.num_devices() << " devices";
    if (devices > n.num_devices()) {
      out << " plus " << devices - n.num_devices() << " joined by earlier events";
    }
    out << ")";
    return out.str();
  };
  for (const std::size_t i : by_time) {
    const FaultEvent& e = plan.events[i];
    if (!finite_nonneg(e.time)) {
      reject_event(e, i, "event time must be finite and >= 0");
    }
    if (e.until < e.time) {
      std::ostringstream out;
      out << "transient end until=" << e.until << " precedes start time=" << e.time;
      reject_event(e, i, out.str());
    }
    switch (e.kind) {
      case FaultKind::kDeviceCrash:
      case FaultKind::kDeviceLeave:
        if (e.device < 0 || e.device >= devices) {
          reject_event(e, i, device_range(e.device));
        }
        break;
      case FaultKind::kSlowdown:
        if (e.device < 0 || e.device >= devices) {
          reject_event(e, i, device_range(e.device));
        }
        if (!std::isfinite(e.factor) || e.factor <= 0.0) {
          reject_event(e, i, "slowdown factor must be finite and > 0, got " +
                                 std::to_string(e.factor));
        }
        break;
      case FaultKind::kLinkDegrade:
        if (e.link_src < 0 || e.link_src >= devices) {
          reject_event(e, i, "link source: " + device_range(e.link_src));
        }
        if (e.link_dst < 0 || e.link_dst >= devices) {
          reject_event(e, i, "link destination: " + device_range(e.link_dst));
        }
        if (e.link_src == e.link_dst) {
          reject_event(e, i, "a device has no link to itself");
        }
        if (!std::isfinite(e.factor) || e.factor <= 0.0) {
          reject_event(e, i, "link degrade factor must be finite and > 0, got " +
                                 std::to_string(e.factor));
        }
        if (!finite_nonneg(e.delay_add)) {
          reject_event(e, i, "link degrade delay_add must be finite and >= 0, got " +
                                 std::to_string(e.delay_add));
        }
        break;
      case FaultKind::kDeviceJoin:
        if (!std::isfinite(e.joined.speed) || e.joined.speed <= 0.0) {
          reject_event(e, i, "joined device speed must be finite and > 0, got " +
                                 std::to_string(e.joined.speed));
        }
        if (!std::isfinite(e.join_bandwidth) || e.join_bandwidth <= 0.0) {
          reject_event(e, i, "join link bandwidth must be finite and > 0, got " +
                                 std::to_string(e.join_bandwidth));
        }
        if (!finite_nonneg(e.join_delay)) {
          reject_event(e, i, "join link delay must be finite and >= 0, got " +
                                 std::to_string(e.join_delay));
        }
        ++devices;
        break;
    }
  }
}

FaultPlan generate_fault_plan(const DeviceNetwork& n, const FaultPlanParams& params,
                              std::mt19937_64& rng) {
  if (params.horizon <= 0.0 || !std::isfinite(params.horizon)) {
    throw std::invalid_argument("generate_fault_plan: horizon must be finite and > 0");
  }
  FaultPlan plan;
  const int m = n.num_devices();
  std::uniform_real_distribution<double> when(0.0, params.horizon);
  std::uniform_int_distribution<int> which(0, std::max(0, m - 1));

  // Crash / leave distinct devices, always sparing at least one so the
  // instance stays repairable.
  std::vector<int> ids(m);
  for (int i = 0; i < m; ++i) ids[i] = i;
  std::shuffle(ids.begin(), ids.end(), rng);
  const int removable = std::max(0, m - 1);
  const int crashes = std::min(params.crashes, removable);
  const int leaves = std::min(params.leaves, removable - crashes);
  for (int i = 0; i < crashes + leaves; ++i) {
    FaultEvent e;
    e.kind = i < crashes ? FaultKind::kDeviceCrash : FaultKind::kDeviceLeave;
    e.device = ids[i];
    e.time = when(rng);
    plan.events.push_back(e);
  }
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int i = 0; i < params.slowdowns && m > 0; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kSlowdown;
    e.device = which(rng);
    e.time = when(rng);
    e.factor = params.slowdown_factor;
    if (unit(rng) < params.transient_fraction) e.until = e.time + when(rng);
    plan.events.push_back(e);
  }
  for (int i = 0; i < params.link_degrades && m > 1; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kLinkDegrade;
    e.link_src = which(rng);
    do {
      e.link_dst = which(rng);
    } while (e.link_dst == e.link_src);
    e.time = when(rng);
    e.factor = params.link_factor;
    if (unit(rng) < params.transient_fraction) e.until = e.time + when(rng);
    plan.events.push_back(e);
  }
  for (int i = 0; i < params.joins; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kDeviceJoin;
    e.time = when(rng);
    e.joined.speed = n.mean_speed() > 0.0 ? n.mean_speed() : 1.0;
    e.joined.name = "joined";
    e.join_bandwidth = n.mean_bandwidth() > 0.0 ? n.mean_bandwidth() : 1.0;
    e.join_delay = n.mean_delay();
    plan.events.push_back(e);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  // Self-check: a generator bug should surface here, at the source, rather
  // than as a confusing rejection inside whatever later consumes the plan.
  validate_fault_plan(plan, n);
  return plan;
}

namespace {

double parse_number(const std::string& tok, const std::string& spec) {
  try {
    std::size_t pos = 0;
    const double x = std::stod(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument(tok);
    return x;
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_fault_plan: bad number '" + tok + "' in '" + spec +
                                "'");
  }
}

int parse_id(const std::string& tok, const std::string& spec) {
  try {
    std::size_t pos = 0;
    const int x = std::stoi(tok, &pos);
    if (pos != tok.size() || x < 0) throw std::invalid_argument(tok);
    return x;
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_fault_plan: bad device id '" + tok + "' in '" +
                                spec + "'");
  }
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    FaultEvent e;
    std::string head = item, tail;
    const auto at = item.find('@');
    if (at == std::string::npos) {
      throw std::invalid_argument("parse_fault_plan: missing '@<time>' in '" + item + "'");
    }
    head = item.substr(0, at);
    tail = item.substr(at + 1);

    std::string kind = head, target;
    const auto colon = head.find(':');
    if (colon != std::string::npos) {
      kind = head.substr(0, colon);
      target = head.substr(colon + 1);
    }

    // tail = <time>[x<factor>[+<delay>]][:<until>]
    std::string time_part = tail, until_part;
    const auto ucolon = tail.find(':');
    if (ucolon != std::string::npos) {
      time_part = tail.substr(0, ucolon);
      until_part = tail.substr(ucolon + 1);
    }
    std::string factor_part, delay_part;
    const auto x = time_part.find('x');
    if (x != std::string::npos) {
      factor_part = time_part.substr(x + 1);
      time_part = time_part.substr(0, x);
      const auto plus = factor_part.find('+');
      if (plus != std::string::npos) {
        delay_part = factor_part.substr(plus + 1);
        factor_part = factor_part.substr(0, plus);
      }
    }
    e.time = parse_number(time_part, item);
    if (!until_part.empty()) e.until = parse_number(until_part, item);

    if (kind == "crash" || kind == "leave") {
      e.kind = kind == "crash" ? FaultKind::kDeviceCrash : FaultKind::kDeviceLeave;
      if (target.empty()) {
        throw std::invalid_argument("parse_fault_plan: '" + kind + "' needs a device id");
      }
      e.device = parse_id(target, item);
    } else if (kind == "slow") {
      e.kind = FaultKind::kSlowdown;
      if (target.empty() || factor_part.empty()) {
        throw std::invalid_argument(
            "parse_fault_plan: 'slow' needs slow:<dev>@<t>x<factor>");
      }
      e.device = parse_id(target, item);
      e.factor = parse_number(factor_part, item);
    } else if (kind == "link") {
      e.kind = FaultKind::kLinkDegrade;
      const auto dash = target.find('-');
      if (dash == std::string::npos || factor_part.empty()) {
        throw std::invalid_argument(
            "parse_fault_plan: 'link' needs link:<src>-<dst>@<t>x<factor>");
      }
      e.link_src = parse_id(target.substr(0, dash), item);
      e.link_dst = parse_id(target.substr(dash + 1), item);
      e.factor = parse_number(factor_part, item);
      if (!delay_part.empty()) e.delay_add = parse_number(delay_part, item);
    } else if (kind == "join") {
      e.kind = FaultKind::kDeviceJoin;
      e.joined.speed = factor_part.empty() ? 1.0 : parse_number(factor_part, item);
      e.joined.name = "joined";
    } else {
      throw std::invalid_argument("parse_fault_plan: unknown event kind '" + kind + "'");
    }
    plan.events.push_back(e);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  return plan;
}

std::string describe(const FaultEvent& e) {
  std::ostringstream out;
  switch (e.kind) {
    case FaultKind::kDeviceCrash:
      out << "crash of device " << e.device << " at t=" << e.time;
      break;
    case FaultKind::kDeviceLeave:
      out << "departure of device " << e.device << " at t=" << e.time;
      break;
    case FaultKind::kSlowdown:
      out << "slowdown x" << e.factor << " of device " << e.device << " at t=" << e.time;
      if (e.until < kInf) out << " until t=" << e.until;
      break;
    case FaultKind::kLinkDegrade:
      out << "link " << e.link_src << "->" << e.link_dst << " degraded x" << e.factor;
      if (e.delay_add > 0.0) out << " (+" << e.delay_add << " delay)";
      out << " at t=" << e.time;
      if (e.until < kInf) out << " until t=" << e.until;
      break;
    case FaultKind::kDeviceJoin:
      out << "device join at t=" << e.time;
      break;
  }
  return out.str();
}

FaultSimResult simulate_with_faults(const TaskGraph& g, const DeviceNetwork& n,
                                    const Placement& p, const LatencyModel& lat,
                                    const FaultPlan& plan, const SimOptions& opt) {
  validate_sim_options(opt, "simulate_with_faults");
  if (opt.trace != nullptr && !opt.trace->empty()) {
    throw std::invalid_argument(
        "simulate_with_faults: NetworkTrace is not supported on the fault path; "
        "encode time-varying link conditions as kLinkDegrade events instead");
  }
  if (opt.shared_links != nullptr) {
    throw std::invalid_argument(
        "simulate_with_faults: shared-link contention is not supported on the "
        "fault path; project the topology with apply_topology and use per-link "
        "kLinkDegrade events instead");
  }
  if (!is_feasible(g, n, p)) {
    throw std::invalid_argument("simulate_with_faults: infeasible placement");
  }
  validate_fault_plan(plan, n);
  detail::bump_simulation_count();
  const int nv = g.num_tasks();
  const int ne = g.num_edges();
  const int m = n.num_devices();

  FaultSimResult result;
  Schedule& sched = result.schedule;
  sched.tasks.assign(nv, TaskTiming{-1.0, -1.0});
  sched.edge_start.assign(ne, -1.0);
  sched.edge_finish.assign(ne, -1.0);
  if (nv == 0) return result;

  const std::vector<FaultAction> actions = expand_plan(plan, m);

  std::priority_queue<Event, std::vector<Event>, EventLater> pq;
  long seq = 0;

  std::vector<int> remaining_inputs(nv);
  for (int v = 0; v < nv; ++v) remaining_inputs[v] = g.in_degree(v);

  std::vector<std::deque<int>> fifo(m);
  std::vector<int> running(m, 0);        // occupied cores per device
  std::vector<double> nic_free(m, 0.0);  // serialize_transfers only
  int completed = 0;

  // Fault state. `scale` multiplies durations (1 = nominal); link effects are
  // keyed by the directed device pair.
  std::vector<char> up(m, 1);
  std::vector<char> leaving(m, 0);  // departed gracefully: running work finishes
  std::vector<double> scale(m, 1.0);
  std::map<std::pair<int, int>, std::pair<double, double>> link_effect;  // {factor, delay}

  // Rescalable in-flight work: current finish times + version counters so a
  // rescheduled completion invalidates its stale queue entry.
  std::vector<int> task_version(nv, 0);
  std::vector<double> task_finish_at(nv, -1.0);
  std::vector<char> stranded(nv, 0);
  std::vector<int> edge_version(ne, 0);
  std::vector<double> edge_finish_at(ne, -1.0);
  std::vector<double> edge_wire_begin(ne, 0.0);  // when the wire portion starts
  std::vector<int> edge_src_dev(ne, -1), edge_dst_dev(ne, -1);
  std::vector<char> edge_inflight(ne, 0);

  auto link_terms = [&](int k, int l) -> std::pair<double, double> {
    const auto it = link_effect.find({k, l});
    return it == link_effect.end() ? std::pair<double, double>{1.0, 0.0} : it->second;
  };

  auto start_task = [&](int v, double t) {
    const int d = p.device_of(v);
    ++running[d];
    sched.tasks[v].start = t;
    const double w = realize(lat.compute_time(g, n, v, d), opt) * scale[d];
    task_finish_at[v] = t + w;
    pq.push(Event{t + w, seq++, EventKind::kTaskDone, v, task_version[v]});
  };

  auto make_runnable = [&](int v, double t) {
    const int d = p.device_of(v);
    if (stranded[v]) return;
    if (!up[d]) {  // inputs arrived at a dead device: the task can never run
      stranded[v] = 1;
      return;
    }
    if (running[d] < n.device(d).cores && fifo[d].empty()) {
      start_task(v, t);
    } else {
      fifo[d].push_back(v);
    }
  };

  auto strand_unfinished_on = [&](int d, bool kill_running) {
    for (int v = 0; v < nv; ++v) {
      if (p.device_of(v) != d || sched.tasks[v].finish >= 0.0) continue;
      const bool is_running = sched.tasks[v].start >= 0.0;
      if (is_running && !kill_running) continue;  // graceful leave: let it finish
      stranded[v] = 1;
      if (is_running) {
        ++task_version[v];  // invalidate the pending completion event
        sched.tasks[v].start = -1.0;
      }
    }
    fifo[d].clear();
    if (kill_running) running[d] = 0;
  };

  auto apply_fault = [&](const FaultAction& a, double t) {
    switch (a.type) {
      case FaultAction::kCrash:
        if (!up[a.device]) break;
        up[a.device] = 0;
        result.failed_devices.push_back(a.device);
        strand_unfinished_on(a.device, /*kill_running=*/true);
        break;
      case FaultAction::kLeave:
        if (!up[a.device]) break;
        up[a.device] = 0;
        leaving[a.device] = 1;
        result.failed_devices.push_back(a.device);
        strand_unfinished_on(a.device, /*kill_running=*/false);
        break;
      case FaultAction::kSlowApply:
      case FaultAction::kSlowRevert: {
        const int d = a.device;
        const double old_scale = scale[d];
        scale[d] = a.type == FaultAction::kSlowApply ? scale[d] * a.factor
                                                     : scale[d] / a.factor;
        // Rescale the remaining work of tasks running on d.
        for (int v = 0; v < nv; ++v) {
          if (p.device_of(v) != d || stranded[v]) continue;
          if (sched.tasks[v].start < 0.0 || sched.tasks[v].finish >= 0.0) continue;
          const double remaining = task_finish_at[v] - t;
          task_finish_at[v] = t + remaining * (scale[d] / old_scale);
          pq.push(Event{task_finish_at[v], seq++, EventKind::kTaskDone, v,
                        ++task_version[v]});
        }
        break;
      }
      case FaultAction::kLinkApply:
      case FaultAction::kLinkRevert: {
        auto& eff = link_effect[{a.src, a.dst}];
        if (eff.first == 0.0) eff = {1.0, 0.0};
        const double old_factor = eff.first;
        if (a.type == FaultAction::kLinkApply) {
          eff = {eff.first * a.factor, eff.second + a.delay_add};
        } else {
          eff = {eff.first / a.factor, eff.second - a.delay_add};
        }
        // Rescale in-flight transfers on the degraded link. Only the
        // remaining *wire* time rescales: the startup-delay portion (over by
        // edge_wire_begin, which also covers NIC queueing under
        // serialize_transfers) is bandwidth-independent and already
        // committed, so anchoring at max(t, wire_begin) leaves it exempt -
        // and keeps a revert from moving the finish before the start.
        for (int e = 0; e < ne; ++e) {
          if (!edge_inflight[e] || edge_src_dev[e] != a.src || edge_dst_dev[e] != a.dst) {
            continue;
          }
          const double begun = std::max(t, edge_wire_begin[e]);
          const double remaining = edge_finish_at[e] - begun;
          if (remaining <= 0.0) continue;  // zero wire time: nothing to rescale
          edge_finish_at[e] = begun + remaining * (eff.first / old_factor);
          pq.push(Event{edge_finish_at[e], seq++, EventKind::kTransferDone, e,
                        ++edge_version[e]});
        }
        break;
      }
    }
  };

  // Entry tasks become runnable at t = 0 in task-id order.
  for (int v = 0; v < nv; ++v) {
    if (remaining_inputs[v] == 0) make_runnable(v, 0.0);
  }
  // topological_order() throws on cyclic input; check up-front so a cyclic
  // graph cannot hang the event loop.
  (void)g.topological_order();

  for (std::size_t i = 0; i < actions.size(); ++i) {
    pq.push(Event{actions[i].time, kFaultSeqBase + static_cast<long>(i), EventKind::kFault,
                  static_cast<int>(i), 0});
  }

  while (!pq.empty()) {
    const Event ev = pq.top();
    pq.pop();
    if (ev.kind == EventKind::kFault) {
      apply_fault(actions[static_cast<std::size_t>(ev.id)], ev.time);
      continue;
    }
    if (ev.kind == EventKind::kTaskDone) {
      const int v = ev.id;
      if (ev.version != task_version[v]) continue;  // rescaled or killed
      sched.tasks[v].finish = ev.time;
      ++completed;
      const int d = p.device_of(v);
      // Outputs start transmitting to every child's device - concurrently in
      // the paper's model, back-to-back through the NIC under contention.
      for (int e : g.out_edges(v)) {
        const int dl = p.device_of(g.edge(e).dst);
        const auto [lf, ld] = link_terms(d, dl);
        const double cr = realize(lat.comm_time(g, n, e, d, dl), opt);
        const double c = cr * lf + (dl != d ? ld : 0.0);
        double start = ev.time;
        if (opt.serialize_transfers && dl != d) {
          start = std::max(start, nic_free[d]);
          nic_free[d] = start + c;
        }
        // Where the wire (bandwidth-proportional) portion begins: after the
        // realized startup delay, stretched like the rest of the transfer by
        // the active link factor, plus the degrade's extra delay. Noise is
        // multiplicative, so the realized startup keeps the expected startup
        // fraction of the realized total.
        const double ce = lat.comm_time(g, n, e, d, dl);
        const double de = lat.comm_startup(g, n, e, d, dl);
        const double dr = ce > 0.0 ? de * (cr / ce) : 0.0;
        edge_wire_begin[e] = start + dr * lf + (dl != d ? ld : 0.0);
        sched.edge_start[e] = start;
        edge_src_dev[e] = d;
        edge_dst_dev[e] = dl;
        edge_inflight[e] = 1;
        edge_finish_at[e] = start + c;
        pq.push(Event{start + c, seq++, EventKind::kTransferDone, e, edge_version[e]});
      }
      --running[d];
      if (up[d] && !fifo[d].empty() && running[d] < n.device(d).cores) {
        const int next = fifo[d].front();
        fifo[d].pop_front();
        start_task(next, ev.time);
      }
    } else {
      const int e = ev.id;
      if (ev.version != edge_version[e]) continue;  // rescaled
      sched.edge_finish[e] = ev.time;
      edge_inflight[e] = 0;
      const int child = g.edge(e).dst;
      if (--remaining_inputs[child] == 0) make_runnable(child, ev.time);
    }
  }

  // Everything unfinished - killed, never started, or starved of an input
  // produced by a stranded ancestor - is stranded.
  for (int v = 0; v < nv; ++v) {
    if (sched.tasks[v].finish < 0.0) result.stranded.push_back(v);
  }
  if (result.stranded.empty() && completed != nv) {
    throw std::logic_error("simulate_with_faults: not all tasks completed");
  }

  double first_start = kInf, last_finish = -kInf;
  for (const TaskTiming& t : sched.tasks) {
    if (t.finish < 0.0) continue;
    first_start = std::min(first_start, t.start);
    last_finish = std::max(last_finish, t.finish);
  }
  sched.makespan = last_finish >= first_start ? last_finish - first_start : 0.0;
  std::sort(result.failed_devices.begin(), result.failed_devices.end());
  return result;
}

PostFaultNetwork post_fault_network(const DeviceNetwork& base, const FaultPlan& plan) {
  validate_fault_plan(plan, base);
  DeviceNetwork work = base;
  std::vector<char> down(base.num_devices(), 0);

  std::vector<const FaultEvent*> by_time;
  by_time.reserve(plan.events.size());
  for (const FaultEvent& e : plan.events) by_time.push_back(&e);
  std::stable_sort(by_time.begin(), by_time.end(),
                   [](const FaultEvent* a, const FaultEvent* b) { return a->time < b->time; });

  for (const FaultEvent* ep : by_time) {
    const FaultEvent& e = *ep;
    switch (e.kind) {
      case FaultKind::kDeviceCrash:
      case FaultKind::kDeviceLeave:
        down[e.device] = 1;
        break;
      case FaultKind::kSlowdown:
        // A permanent straggler is a proportionally slower device.
        if (e.until == kInf) work.device(e.device).speed /= e.factor;
        break;
      case FaultKind::kLinkDegrade:
        if (e.until == kInf) {
          work.set_link(e.link_src, e.link_dst,
                        work.bandwidth(e.link_src, e.link_dst) / e.factor,
                        work.delay(e.link_src, e.link_dst) + e.delay_add);
        }
        break;
      case FaultKind::kDeviceJoin: {
        const int j = work.add_device(e.joined);
        down.push_back(0);
        for (int k = 0; k < j; ++k) {
          work.set_symmetric_link(k, j, e.join_bandwidth, e.join_delay);
        }
        break;
      }
    }
  }

  PostFaultNetwork out;
  out.old_to_new.assign(down.size(), -1);
  for (std::size_t k = 0; k < down.size(); ++k) {
    if (down[k]) continue;
    out.old_to_new[k] = out.network.add_device(work.device(static_cast<int>(k)));
    out.new_to_old.push_back(static_cast<int>(k));
  }
  for (std::size_t k = 0; k < down.size(); ++k) {
    if (down[k]) continue;
    for (std::size_t l = 0; l < down.size(); ++l) {
      if (down[l] || k == l) continue;
      out.network.set_link(out.old_to_new[k], out.old_to_new[l],
                           work.bandwidth(static_cast<int>(k), static_cast<int>(l)),
                           work.delay(static_cast<int>(k), static_cast<int>(l)));
    }
  }
  return out;
}

Placement remap_placement(const Placement& p, const std::vector<int>& old_to_new) {
  Placement out(p.num_tasks());
  for (int v = 0; v < p.num_tasks(); ++v) {
    const int d = p.device_of(v);
    out.set(v, d >= 0 && d < static_cast<int>(old_to_new.size()) ? old_to_new[d] : -1);
  }
  return out;
}

TaskGraph remap_pinned(const TaskGraph& g, const std::vector<int>& old_to_new) {
  TaskGraph out = g;
  for (int v = 0; v < out.num_tasks(); ++v) {
    const int pin = out.task(v).pinned;
    if (pin < 0) continue;
    // A pin to a lost device maps to an out-of-range id: feasibility checks
    // then report "no feasible device" instead of silently unpinning.
    out.task(v).pinned = pin < static_cast<int>(old_to_new.size()) && old_to_new[pin] >= 0
                             ? old_to_new[pin]
                             : std::numeric_limits<int>::max();
  }
  return out;
}

}  // namespace giph
