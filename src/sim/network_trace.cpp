#include "sim/network_trace.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace giph {
namespace {

[[noreturn]] void fail(const char* caller, int src, int dst, const std::string& what) {
  std::ostringstream os;
  os << caller << ": link " << src << " -> " << dst << ": " << what;
  throw std::invalid_argument(os.str());
}

}  // namespace

void validate_network_trace(const NetworkTrace& trace, const DeviceNetwork& n,
                            const char* caller) {
  const int m = n.num_devices();
  for (std::size_t i = 0; i < trace.links.size(); ++i) {
    const LinkSchedule& l = trace.links[i];
    if (l.src < 0 || l.src >= m || l.dst < 0 || l.dst >= m) {
      fail(caller, l.src, l.dst,
           "endpoint out of range [0, " + std::to_string(m) + ")");
    }
    if (l.src == l.dst) {
      fail(caller, l.src, l.dst, "self-links carry no transfers and cannot be traced");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (trace.links[j].src == l.src && trace.links[j].dst == l.dst) {
        fail(caller, l.src, l.dst, "duplicate schedule for this link");
      }
    }
    double prev = -1.0;
    for (std::size_t s = 0; s < l.segments.size(); ++s) {
      const TraceSegment& seg = l.segments[s];
      std::ostringstream os;
      os << "segment " << s << " (time " << seg.time << "): ";
      if (!std::isfinite(seg.time) || seg.time < 0.0) {
        fail(caller, l.src, l.dst, os.str() + "time must be finite and >= 0");
      }
      if (s > 0 && seg.time <= prev) {
        fail(caller, l.src, l.dst,
             os.str() + "segment times must be strictly increasing (previous is " +
                 std::to_string(prev) + ")");
      }
      prev = seg.time;
      if (!std::isfinite(seg.bandwidth_factor) || !(seg.bandwidth_factor > 0.0)) {
        fail(caller, l.src, l.dst,
             os.str() + "bandwidth_factor must be finite and > 0 (got " +
                 std::to_string(seg.bandwidth_factor) + ")");
      }
      if (!std::isfinite(seg.delay_add) || seg.delay_add < 0.0) {
        fail(caller, l.src, l.dst,
             os.str() + "delay_add must be finite and >= 0 (got " +
                 std::to_string(seg.delay_add) + ")");
      }
      if (!std::isfinite(seg.drop_prob) || seg.drop_prob < 0.0 || seg.drop_prob >= 1.0) {
        fail(caller, l.src, l.dst,
             os.str() + "drop_prob must be in [0, 1) (got " +
                 std::to_string(seg.drop_prob) + ")");
      }
    }
  }
}

}  // namespace giph
