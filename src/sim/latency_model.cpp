#include "sim/latency_model.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace giph {

void LossAwareLatencyModel::set_drop(int k, int l, double p) {
  if (k < 0 || k >= m_ || l < 0 || l >= m_ || k == l) {
    throw std::invalid_argument("LossAwareLatencyModel::set_drop: link " +
                                std::to_string(k) + " -> " + std::to_string(l) +
                                " is not a valid directed link of a " +
                                std::to_string(m_) + "-device network");
  }
  if (!std::isfinite(p) || p < 0.0 || p >= 1.0) {
    throw std::invalid_argument(
        "LossAwareLatencyModel::set_drop: drop probability must be in [0, 1), got " +
        std::to_string(p));
  }
  bump_stamp();
  drop_[static_cast<std::size_t>(k) * m_ + l] = p;
}

}  // namespace giph
