#include "sim/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/sim_engine.hpp"

namespace giph {
namespace {

std::atomic<std::uint64_t> g_full_simulation_count{0};
std::atomic<std::uint64_t> g_delta_simulation_count{0};
std::atomic<std::uint64_t> g_delta_fallback_count{0};

}  // namespace

void detail::bump_simulation_count() noexcept {
  g_full_simulation_count.fetch_add(1, std::memory_order_relaxed);
}

void detail::bump_delta_simulation_count() noexcept {
  g_delta_simulation_count.fetch_add(1, std::memory_order_relaxed);
}

void detail::bump_delta_fallback_count() noexcept {
  g_delta_fallback_count.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t simulation_count() noexcept {
  return full_simulation_count() + delta_simulation_count();
}

std::uint64_t full_simulation_count() noexcept {
  return g_full_simulation_count.load(std::memory_order_relaxed);
}

std::uint64_t delta_simulation_count() noexcept {
  return g_delta_simulation_count.load(std::memory_order_relaxed);
}

std::uint64_t delta_fallback_count() noexcept {
  return g_delta_fallback_count.load(std::memory_order_relaxed);
}

void validate_sim_options(const SimOptions& opt, const char* caller) {
  if (std::isnan(opt.noise)) {
    throw std::invalid_argument(std::string(caller) + ": noise must not be NaN");
  }
  if (opt.noise >= 1.0) {
    throw std::invalid_argument(std::string(caller) +
                                ": noise must be < 1 (a multiplicative draw from "
                                "[x(1-noise), x(1+noise)] could go negative)");
  }
  if (opt.noise > 0.0 && opt.rng == nullptr) {
    throw std::invalid_argument(std::string(caller) + ": noise > 0 requires an rng");
  }
}

void detail::simulate_core(const TaskGraph& g, const DeviceNetwork& n,
                           const Placement& p, const LatencyModel& lat,
                           SimWorkspace& ws, Schedule& out, const SimOptions& opt,
                           DeltaSimState* record, const StreamPlan* plan,
                           const char* caller) {
  // Validate options first: noise without an engine would dereference null
  // inside the event loop, far from the caller's mistake.
  validate_sim_options(opt, caller);
  if (!is_feasible(g, n, p)) {
    throw std::invalid_argument(std::string(caller) + ": infeasible placement");
  }
  detail::bump_simulation_count();
  if (record != nullptr) record->valid = false;
  const int nv = g.num_tasks();
  const int ne = g.num_edges();
  const int nd = n.num_devices();

  // Dynamic-network configuration. Null / empty configurations collapse to
  // null pointers here so the static-network path below is the exact legacy
  // code path (bitwise-identical output, no extra buffers touched).
  const NetworkTrace* trace =
      (opt.trace != nullptr && !opt.trace->empty()) ? opt.trace : nullptr;
  if (trace != nullptr) validate_network_trace(*trace, n, caller);
  const SharedLinkMap* shared = opt.shared_links;
  if (shared != nullptr && shared->num_devices != nd) {
    throw std::invalid_argument(
        std::string(caller) + ": shared_links was built for " +
        std::to_string(shared->num_devices) + " devices but the network has " +
        std::to_string(nd));
  }

  out.tasks.assign(nv, TaskTiming{-1.0, -1.0});
  out.edge_start.assign(ne, -1.0);
  out.edge_finish.assign(ne, -1.0);
  out.makespan = 0.0;
  if (nv == 0) return;

  // All buffers are reset with assign()/clear(), which reuse existing
  // capacity; fifo only grows so previously-sized deques are kept.
  ws.heap.clear();
  ws.remaining_inputs.assign(nv, 0);
  for (int v = 0; v < nv; ++v) ws.remaining_inputs[v] = g.in_degree(v);
  if (static_cast<int>(ws.fifo.size()) < nd) ws.fifo.resize(nd);
  for (int d = 0; d < nd; ++d) ws.fifo[d].clear();
  ws.running.assign(nd, 0);     // occupied cores per device
  ws.nic_free.assign(nd, 0.0);  // serialize_transfers only

  if (record != nullptr) {
    record->runnable_order.assign(nv, -1);
    record->task_event_seq.assign(nv, -1);
    record->edge_event_seq.assign(ne, -1);
  }

  // Dynamic-network state. Breakpoints are pushed before any sim event so
  // they consume seq 0..B-1: a breakpoint takes effect *before* same-time sim
  // events (a transfer dispatched at the breakpoint instant already sees the
  // new conditions; one finishing at that instant is still rescaled).
  std::vector<std::pair<int, int>> breakpoints;  // (trace link, segment)
  if (shared != nullptr) ws.link_free.assign(shared->num_links, 0.0);

  detail::SimEngine eng{g,      n,      p,            lat,    ws, out, opt,
                        trace,  shared, &breakpoints, record, nd, plan};

  if (trace != nullptr) {
    const int nl = static_cast<int>(trace->links.size());
    ws.trace_link.assign(static_cast<std::size_t>(nd) * nd, -1);
    ws.trace_cur.assign(nl, TraceSegment{});
    ws.trace_factor.assign(nl, 1.0);
    ws.edge_version.assign(ne, 0);
    ws.edge_finish_at.assign(ne, -1.0);
    ws.edge_wire_begin.assign(ne, 0.0);
    ws.edge_wire_factor.assign(ne, 1.0);
    ws.edge_inflight.assign(ne, 0);
    for (int li = 0; li < nl; ++li) {
      const LinkSchedule& ls = trace->links[li];
      if (ls.segments.empty()) continue;  // no conditions: stays a plain link
      ws.trace_link[static_cast<std::size_t>(ls.src) * nd + ls.dst] = li;
      for (int si = 0; si < static_cast<int>(ls.segments.size()); ++si) {
        if (ls.segments[si].time <= 0.0) {
          // Active from the start: seed the state, no event needed.
          ws.trace_cur[li] = ls.segments[si];
          ws.trace_factor[li] = wire_factor(ls.segments[si]);
        } else {
          eng.push_event(ls.segments[si].time, detail::kBreakpoint,
                         static_cast<int>(breakpoints.size()));
          breakpoints.emplace_back(li, si);
        }
      }
    }
  }

  if (plan != nullptr) {
    // Streaming: frame arrivals are pushed after the trace breakpoints and
    // before any sim event, so an arrival at the instant a task finishes pops
    // first (lower seq). Frame 0 arrives at t = 0 and is released below like
    // a one-shot run's entry tasks; a 1-frame plan therefore pushes nothing
    // here and the run is bitwise identical to simulate_into().
    const std::vector<double>& arrivals = *plan->arrivals;
    for (int f = 1; f < static_cast<int>(arrivals.size()); ++f) {
      eng.push_event(arrivals[f], detail::kFrameArrival, f);
    }
    // Frame 0's entry copies are exactly the base entries (ids < base_tasks);
    // later frames' copies wait for their kFrameArrival event.
    for (const int v : *plan->entries) eng.make_runnable(v, 0.0);
  } else {
    // Entry tasks become runnable at t = 0 in task-id order.
    for (int v = 0; v < nv; ++v) {
      if (ws.remaining_inputs[v] == 0) eng.make_runnable(v, 0.0);
    }
  }
  // topological_order() throws on cyclic input; check up-front so a cyclic
  // graph cannot hang the event loop.
  (void)g.topological_order();

  eng.run();
  eng.finalize(caller);
}

void simulate_into(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                   const LatencyModel& lat, SimWorkspace& ws, Schedule& out,
                   const SimOptions& opt, DeltaSimState* record) {
  detail::simulate_core(g, n, p, lat, ws, out, opt, record, nullptr, "simulate");
}

Schedule simulate(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                  const LatencyModel& lat, const SimOptions& opt) {
  SimWorkspace ws;
  Schedule sched;
  simulate_into(g, n, p, lat, ws, sched, opt);
  return sched;
}

double makespan(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                const LatencyModel& lat) {
  return simulate(g, n, p, lat).makespan;
}

double earliest_start_on(const Schedule& sched, const TaskGraph& g,
                         const DeviceNetwork& n, const Placement& p,
                         const LatencyModel& lat, int v, int d) {
  double est = 0.0;
  for (int e : g.in_edges(v)) {
    const int parent = g.edge(e).src;
    const int pd = p.device_of(parent);
    est = std::max(est, sched.tasks[parent].finish + lat.comm_time(g, n, e, pd, d));
  }
  return est;
}

double earliest_start_on_queued(const Schedule& sched, const TaskGraph& g,
                                const DeviceNetwork& n, const Placement& p,
                                const LatencyModel& lat, int v, int d) {
  double est = earliest_start_on(sched, g, n, p, lat, v, d);
  // Tasks currently scheduled to start before v would occupy device d ahead
  // of it; tasks starting later (v's descendants and unrelated late work)
  // would queue behind v instead.
  for (int u = 0; u < g.num_tasks(); ++u) {
    if (u == v || p.device_of(u) != d) continue;
    if (sched.tasks[u].start >= sched.tasks[v].start) continue;
    est = std::max(est, sched.tasks[u].finish);
  }
  return est;
}

}  // namespace giph
