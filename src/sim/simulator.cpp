#include "sim/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace giph {
namespace {

constexpr int kTaskDone = 0;
constexpr int kTransferDone = 1;
constexpr int kBreakpoint = 2;

// Later events sort before earlier ones so heap operations keep the earliest
// event at the front; ties break by creation order, making pop order fully
// deterministic (and identical to the std::priority_queue this replaced).
struct EventLater {
  bool operator()(const detail::SimEvent& a, const detail::SimEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

double realize(double expected, const SimOptions& opt) {
  if (opt.noise <= 0.0) return expected;
  std::uniform_real_distribution<double> d(expected * (1.0 - opt.noise),
                                           expected * (1.0 + opt.noise));
  return d(*opt.rng);
}

std::atomic<std::uint64_t> g_simulation_count{0};

}  // namespace

void detail::bump_simulation_count() noexcept {
  g_simulation_count.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t simulation_count() noexcept {
  return g_simulation_count.load(std::memory_order_relaxed);
}

void validate_sim_options(const SimOptions& opt, const char* caller) {
  if (std::isnan(opt.noise)) {
    throw std::invalid_argument(std::string(caller) + ": noise must not be NaN");
  }
  if (opt.noise >= 1.0) {
    throw std::invalid_argument(std::string(caller) +
                                ": noise must be < 1 (a multiplicative draw from "
                                "[x(1-noise), x(1+noise)] could go negative)");
  }
  if (opt.noise > 0.0 && opt.rng == nullptr) {
    throw std::invalid_argument(std::string(caller) + ": noise > 0 requires an rng");
  }
}

void simulate_into(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                   const LatencyModel& lat, SimWorkspace& ws, Schedule& out,
                   const SimOptions& opt) {
  // Validate options first: noise without an engine would dereference null
  // inside the event loop, far from the caller's mistake.
  validate_sim_options(opt, "simulate");
  if (!is_feasible(g, n, p)) {
    throw std::invalid_argument("simulate: infeasible placement");
  }
  detail::bump_simulation_count();
  const int nv = g.num_tasks();
  const int ne = g.num_edges();
  const int nd = n.num_devices();

  // Dynamic-network configuration. Null / empty configurations collapse to
  // null pointers here so the static-network path below is the exact legacy
  // code path (bitwise-identical output, no extra buffers touched).
  const NetworkTrace* trace =
      (opt.trace != nullptr && !opt.trace->empty()) ? opt.trace : nullptr;
  if (trace != nullptr) validate_network_trace(*trace, n, "simulate");
  const SharedLinkMap* shared = opt.shared_links;
  if (shared != nullptr && shared->num_devices != nd) {
    throw std::invalid_argument(
        "simulate: shared_links was built for " +
        std::to_string(shared->num_devices) + " devices but the network has " +
        std::to_string(nd));
  }

  out.tasks.assign(nv, TaskTiming{-1.0, -1.0});
  out.edge_start.assign(ne, -1.0);
  out.edge_finish.assign(ne, -1.0);
  out.makespan = 0.0;
  if (nv == 0) return;

  // All buffers are reset with assign()/clear(), which reuse existing
  // capacity; fifo only grows so previously-sized deques are kept.
  auto& heap = ws.heap;
  heap.clear();
  const EventLater later;
  long seq = 0;

  ws.remaining_inputs.assign(nv, 0);
  auto& remaining_inputs = ws.remaining_inputs;
  for (int v = 0; v < nv; ++v) remaining_inputs[v] = g.in_degree(v);

  if (static_cast<int>(ws.fifo.size()) < nd) ws.fifo.resize(nd);
  for (int d = 0; d < nd; ++d) ws.fifo[d].clear();
  auto& fifo = ws.fifo;
  ws.running.assign(nd, 0);  // occupied cores per device
  auto& running = ws.running;
  ws.nic_free.assign(nd, 0.0);  // serialize_transfers only
  auto& nic_free = ws.nic_free;
  int completed = 0;

  auto push_event = [&](double time, int kind, int id, int version = 0) {
    heap.push_back(detail::SimEvent{time, seq++, kind, id, version});
    std::push_heap(heap.begin(), heap.end(), later);
  };

  // Dynamic-network state. Breakpoints are pushed before any sim event so
  // they consume seq 0..B-1: a breakpoint takes effect *before* same-time sim
  // events (a transfer dispatched at the breakpoint instant already sees the
  // new conditions; one finishing at that instant is still rescaled).
  std::vector<std::pair<int, int>> breakpoints;  // (trace link, segment)
  if (shared != nullptr) ws.link_free.assign(shared->num_links, 0.0);
  if (trace != nullptr) {
    const int nl = static_cast<int>(trace->links.size());
    ws.trace_link.assign(static_cast<std::size_t>(nd) * nd, -1);
    ws.trace_cur.assign(nl, TraceSegment{});
    ws.trace_factor.assign(nl, 1.0);
    ws.edge_version.assign(ne, 0);
    ws.edge_finish_at.assign(ne, -1.0);
    ws.edge_wire_begin.assign(ne, 0.0);
    ws.edge_wire_factor.assign(ne, 1.0);
    ws.edge_inflight.assign(ne, 0);
    for (int li = 0; li < nl; ++li) {
      const LinkSchedule& ls = trace->links[li];
      if (ls.segments.empty()) continue;  // no conditions: stays a plain link
      ws.trace_link[static_cast<std::size_t>(ls.src) * nd + ls.dst] = li;
      for (int si = 0; si < static_cast<int>(ls.segments.size()); ++si) {
        if (ls.segments[si].time <= 0.0) {
          // Active from the start: seed the state, no event needed.
          ws.trace_cur[li] = ls.segments[si];
          ws.trace_factor[li] = wire_factor(ls.segments[si]);
        } else {
          push_event(ls.segments[si].time, kBreakpoint,
                     static_cast<int>(breakpoints.size()));
          breakpoints.emplace_back(li, si);
        }
      }
    }
  }

  auto start_task = [&](int v, double t) {
    const int d = p.device_of(v);
    ++running[d];
    out.tasks[v].start = t;
    const double w = realize(lat.compute_time(g, n, v, d), opt);
    push_event(t + w, kTaskDone, v);
  };

  auto make_runnable = [&](int v, double t) {
    const int d = p.device_of(v);
    if (running[d] < n.device(d).cores && fifo[d].empty()) {
      start_task(v, t);
    } else {
      fifo[d].push_back(v);
    }
  };

  // Entry tasks become runnable at t = 0 in task-id order.
  for (int v = 0; v < nv; ++v) {
    if (remaining_inputs[v] == 0) make_runnable(v, 0.0);
  }
  // topological_order() throws on cyclic input; check up-front so a cyclic
  // graph cannot hang the event loop.
  (void)g.topological_order();

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const detail::SimEvent ev = heap.back();
    heap.pop_back();
    if (ev.kind == kTaskDone) {
      const int v = ev.id;
      out.tasks[v].finish = ev.time;
      ++completed;
      const int d = p.device_of(v);
      // Outputs start transmitting to every child's device - concurrently in
      // the paper's model, back-to-back through the NIC under contention.
      for (int e : g.out_edges(v)) {
        const int dl = p.device_of(g.edge(e).dst);
        const double c = realize(lat.comm_time(g, n, e, d, dl), opt);
        double start = ev.time;
        if (dl != d) {
          if (opt.serialize_transfers) start = std::max(start, nic_free[d]);
          if (shared != nullptr) {
            for (const int li : shared->links_on(d, dl)) {
              start = std::max(start, ws.link_free[li]);
            }
          }
        }
        double dur = c;
        const int tl =
            trace != nullptr ? ws.trace_link[static_cast<std::size_t>(d) * nd + dl]
                             : -1;
        if (tl >= 0) {
          // Split the realized time into startup (delay) and wire (bandwidth)
          // portions; only the wire portion scales with the link conditions.
          // Noise is multiplicative, so the realized startup keeps the
          // expected startup fraction de / ce of the realized total.
          const double ce = lat.comm_time(g, n, e, d, dl);
          const double de = lat.comm_startup(g, n, e, d, dl);
          const double dr = ce > 0.0 ? de * (c / ce) : 0.0;
          const TraceSegment& seg = ws.trace_cur[tl];
          const double startup = dr + seg.delay_add;
          dur = startup + (c - dr) * ws.trace_factor[tl];
          ws.edge_wire_begin[e] = start + startup;
          ws.edge_wire_factor[e] = ws.trace_factor[tl];
        } else if (trace != nullptr) {
          ws.edge_wire_begin[e] = start;
          ws.edge_wire_factor[e] = 1.0;
        }
        if (dl != d) {
          if (opt.serialize_transfers) nic_free[d] = start + dur;
          if (shared != nullptr) {
            // Reserve every physical link on the route for the whole transfer
            // (store-and-forward is not modeled; the route is one pipe).
            for (const int li : shared->links_on(d, dl)) {
              ws.link_free[li] = start + dur;
            }
          }
        }
        if (trace != nullptr) {
          ws.edge_inflight[e] = 1;
          ws.edge_finish_at[e] = start + dur;
        }
        out.edge_start[e] = start;
        push_event(start + dur, kTransferDone, e,
                   trace != nullptr ? ws.edge_version[e] : 0);
      }
      --running[d];
      if (!fifo[d].empty() && running[d] < n.device(d).cores) {
        const int next = fifo[d].front();
        fifo[d].pop_front();
        start_task(next, ev.time);
      }
    } else if (ev.kind == kTransferDone) {
      const int e = ev.id;
      if (trace != nullptr) {
        if (ev.version != ws.edge_version[e]) continue;  // stale: rescaled
        ws.edge_inflight[e] = 0;
      }
      out.edge_finish[e] = ev.time;
      const int child = g.edge(e).dst;
      if (--remaining_inputs[child] == 0) make_runnable(child, ev.time);
    } else {  // kBreakpoint
      const auto [li, si] = breakpoints[ev.id];
      const TraceSegment& seg = trace->links[li].segments[si];
      ws.trace_cur[li] = seg;
      const double f_new = wire_factor(seg);
      ws.trace_factor[li] = f_new;
      const int k = trace->links[li].src;
      const int l = trace->links[li].dst;
      // Rescale the remaining wire time of every in-flight transfer on this
      // link, in ascending edge-id order (the oracle mirrors this order).
      // delay_add changes never affect in-flight transfers: their startup was
      // committed at dispatch.
      for (int e = 0; e < ne; ++e) {
        if (ws.edge_inflight[e] == 0) continue;
        if (p.device_of(g.edge(e).src) != k || p.device_of(g.edge(e).dst) != l) {
          continue;
        }
        if (ws.edge_wire_factor[e] == f_new) continue;
        const double anchor = std::max(ev.time, ws.edge_wire_begin[e]);
        const double remaining = ws.edge_finish_at[e] - anchor;
        if (remaining <= 0.0) {
          // Wire already done (finishing this instant, or still in startup
          // with zero wire time): keep the pending event and its seq.
          ws.edge_wire_factor[e] = f_new;
          continue;
        }
        ws.edge_finish_at[e] = anchor + remaining * (f_new / ws.edge_wire_factor[e]);
        ws.edge_wire_factor[e] = f_new;
        push_event(ws.edge_finish_at[e], kTransferDone, e, ++ws.edge_version[e]);
      }
    }
  }

  if (completed != nv) {
    throw std::logic_error("simulate: not all tasks completed (cyclic graph?)");
  }

  double first_start = out.tasks[0].start, last_finish = out.tasks[0].finish;
  for (const TaskTiming& t : out.tasks) {
    first_start = std::min(first_start, t.start);
    last_finish = std::max(last_finish, t.finish);
  }
  out.makespan = last_finish - first_start;
}

Schedule simulate(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                  const LatencyModel& lat, const SimOptions& opt) {
  SimWorkspace ws;
  Schedule sched;
  simulate_into(g, n, p, lat, ws, sched, opt);
  return sched;
}

double makespan(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                const LatencyModel& lat) {
  return simulate(g, n, p, lat).makespan;
}

double earliest_start_on(const Schedule& sched, const TaskGraph& g,
                         const DeviceNetwork& n, const Placement& p,
                         const LatencyModel& lat, int v, int d) {
  double est = 0.0;
  for (int e : g.in_edges(v)) {
    const int parent = g.edge(e).src;
    const int pd = p.device_of(parent);
    est = std::max(est, sched.tasks[parent].finish + lat.comm_time(g, n, e, pd, d));
  }
  return est;
}

double earliest_start_on_queued(const Schedule& sched, const TaskGraph& g,
                                const DeviceNetwork& n, const Placement& p,
                                const LatencyModel& lat, int v, int d) {
  double est = earliest_start_on(sched, g, n, p, lat, v, d);
  // Tasks currently scheduled to start before v would occupy device d ahead
  // of it; tasks starting later (v's descendants and unrelated late work)
  // would queue behind v instead.
  for (int u = 0; u < g.num_tasks(); ++u) {
    if (u == v || p.device_of(u) != d) continue;
    if (sched.tasks[u].start >= sched.tasks[v].start) continue;
    est = std::max(est, sched.tasks[u].finish);
  }
  return est;
}

}  // namespace giph
