#include "sim/simulator.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <stdexcept>

namespace giph {
namespace {

enum class EventKind { kTaskDone, kTransferDone };

struct Event {
  double time;
  long seq;  // creation order, breaks time ties deterministically
  EventKind kind;
  int id;  // task id or edge id
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

double realize(double expected, const SimOptions& opt) {
  if (opt.noise <= 0.0) return expected;
  std::uniform_real_distribution<double> d(expected * (1.0 - opt.noise),
                                           expected * (1.0 + opt.noise));
  return d(*opt.rng);
}

}  // namespace

Schedule simulate(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                  const LatencyModel& lat, const SimOptions& opt) {
  // Validate options first: noise without an engine would dereference null
  // inside the event loop, far from the caller's mistake.
  if (opt.noise > 0.0 && opt.rng == nullptr) {
    throw std::invalid_argument("simulate: noise > 0 requires an rng");
  }
  if (!is_feasible(g, n, p)) {
    throw std::invalid_argument("simulate: infeasible placement");
  }
  const int nv = g.num_tasks();
  const int ne = g.num_edges();

  Schedule sched;
  sched.tasks.assign(nv, TaskTiming{-1.0, -1.0});
  sched.edge_start.assign(ne, -1.0);
  sched.edge_finish.assign(ne, -1.0);
  if (nv == 0) return sched;

  std::priority_queue<Event, std::vector<Event>, EventLater> pq;
  long seq = 0;

  std::vector<int> remaining_inputs(nv);
  for (int v = 0; v < nv; ++v) remaining_inputs[v] = g.in_degree(v);

  std::vector<std::deque<int>> fifo(n.num_devices());
  std::vector<int> running(n.num_devices(), 0);  // occupied cores per device
  std::vector<double> nic_free(n.num_devices(), 0.0);  // serialize_transfers only
  int completed = 0;

  auto start_task = [&](int v, double t) {
    const int d = p.device_of(v);
    ++running[d];
    sched.tasks[v].start = t;
    const double w = realize(lat.compute_time(g, n, v, d), opt);
    pq.push(Event{t + w, seq++, EventKind::kTaskDone, v});
  };

  auto make_runnable = [&](int v, double t) {
    const int d = p.device_of(v);
    if (running[d] < n.device(d).cores && fifo[d].empty()) {
      start_task(v, t);
    } else {
      fifo[d].push_back(v);
    }
  };

  // Entry tasks become runnable at t = 0 in task-id order.
  for (int v = 0; v < nv; ++v) {
    if (remaining_inputs[v] == 0) make_runnable(v, 0.0);
  }
  // topological_order() throws on cyclic input; check up-front so a cyclic
  // graph cannot hang the event loop.
  (void)g.topological_order();

  while (!pq.empty()) {
    const Event ev = pq.top();
    pq.pop();
    if (ev.kind == EventKind::kTaskDone) {
      const int v = ev.id;
      sched.tasks[v].finish = ev.time;
      ++completed;
      const int d = p.device_of(v);
      // Outputs start transmitting to every child's device - concurrently in
      // the paper's model, back-to-back through the NIC under contention.
      for (int e : g.out_edges(v)) {
        const int dl = p.device_of(g.edge(e).dst);
        const double c = realize(lat.comm_time(g, n, e, d, dl), opt);
        double start = ev.time;
        if (opt.serialize_transfers && dl != d) {
          start = std::max(start, nic_free[d]);
          nic_free[d] = start + c;
        }
        sched.edge_start[e] = start;
        pq.push(Event{start + c, seq++, EventKind::kTransferDone, e});
      }
      --running[d];
      if (!fifo[d].empty() && running[d] < n.device(d).cores) {
        const int next = fifo[d].front();
        fifo[d].pop_front();
        start_task(next, ev.time);
      }
    } else {
      const int e = ev.id;
      sched.edge_finish[e] = ev.time;
      const int child = g.edge(e).dst;
      if (--remaining_inputs[child] == 0) make_runnable(child, ev.time);
    }
  }

  if (completed != nv) {
    throw std::logic_error("simulate: not all tasks completed (cyclic graph?)");
  }

  double first_start = sched.tasks[0].start, last_finish = sched.tasks[0].finish;
  for (const TaskTiming& t : sched.tasks) {
    first_start = std::min(first_start, t.start);
    last_finish = std::max(last_finish, t.finish);
  }
  sched.makespan = last_finish - first_start;
  return sched;
}

double makespan(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                const LatencyModel& lat) {
  return simulate(g, n, p, lat).makespan;
}

double earliest_start_on(const Schedule& sched, const TaskGraph& g,
                         const DeviceNetwork& n, const Placement& p,
                         const LatencyModel& lat, int v, int d) {
  double est = 0.0;
  for (int e : g.in_edges(v)) {
    const int parent = g.edge(e).src;
    const int pd = p.device_of(parent);
    est = std::max(est, sched.tasks[parent].finish + lat.comm_time(g, n, e, pd, d));
  }
  return est;
}

double earliest_start_on_queued(const Schedule& sched, const TaskGraph& g,
                                const DeviceNetwork& n, const Placement& p,
                                const LatencyModel& lat, int v, int d) {
  double est = earliest_start_on(sched, g, n, p, lat, v, d);
  // Tasks currently scheduled to start before v would occupy device d ahead
  // of it; tasks starting later (v's descendants and unrelated late work)
  // would queue behind v instead.
  for (int u = 0; u < g.num_tasks(); ++u) {
    if (u == v || p.device_of(u) != d) continue;
    if (sched.tasks[u].start >= sched.tasks[v].start) continue;
    est = std::max(est, sched.tasks[u].finish);
  }
  return est;
}

}  // namespace giph
