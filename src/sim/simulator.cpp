#include "sim/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

namespace giph {
namespace {

constexpr int kTaskDone = 0;
constexpr int kTransferDone = 1;

// Later events sort before earlier ones so heap operations keep the earliest
// event at the front; ties break by creation order, making pop order fully
// deterministic (and identical to the std::priority_queue this replaced).
struct EventLater {
  bool operator()(const detail::SimEvent& a, const detail::SimEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

double realize(double expected, const SimOptions& opt) {
  if (opt.noise <= 0.0) return expected;
  std::uniform_real_distribution<double> d(expected * (1.0 - opt.noise),
                                           expected * (1.0 + opt.noise));
  return d(*opt.rng);
}

std::atomic<std::uint64_t> g_simulation_count{0};

}  // namespace

void detail::bump_simulation_count() noexcept {
  g_simulation_count.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t simulation_count() noexcept {
  return g_simulation_count.load(std::memory_order_relaxed);
}

void validate_sim_options(const SimOptions& opt, const char* caller) {
  if (std::isnan(opt.noise)) {
    throw std::invalid_argument(std::string(caller) + ": noise must not be NaN");
  }
  if (opt.noise >= 1.0) {
    throw std::invalid_argument(std::string(caller) +
                                ": noise must be < 1 (a multiplicative draw from "
                                "[x(1-noise), x(1+noise)] could go negative)");
  }
  if (opt.noise > 0.0 && opt.rng == nullptr) {
    throw std::invalid_argument(std::string(caller) + ": noise > 0 requires an rng");
  }
}

void simulate_into(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                   const LatencyModel& lat, SimWorkspace& ws, Schedule& out,
                   const SimOptions& opt) {
  // Validate options first: noise without an engine would dereference null
  // inside the event loop, far from the caller's mistake.
  validate_sim_options(opt, "simulate");
  if (!is_feasible(g, n, p)) {
    throw std::invalid_argument("simulate: infeasible placement");
  }
  detail::bump_simulation_count();
  const int nv = g.num_tasks();
  const int ne = g.num_edges();
  const int nd = n.num_devices();

  out.tasks.assign(nv, TaskTiming{-1.0, -1.0});
  out.edge_start.assign(ne, -1.0);
  out.edge_finish.assign(ne, -1.0);
  out.makespan = 0.0;
  if (nv == 0) return;

  // All buffers are reset with assign()/clear(), which reuse existing
  // capacity; fifo only grows so previously-sized deques are kept.
  auto& heap = ws.heap;
  heap.clear();
  const EventLater later;
  long seq = 0;

  ws.remaining_inputs.assign(nv, 0);
  auto& remaining_inputs = ws.remaining_inputs;
  for (int v = 0; v < nv; ++v) remaining_inputs[v] = g.in_degree(v);

  if (static_cast<int>(ws.fifo.size()) < nd) ws.fifo.resize(nd);
  for (int d = 0; d < nd; ++d) ws.fifo[d].clear();
  auto& fifo = ws.fifo;
  ws.running.assign(nd, 0);  // occupied cores per device
  auto& running = ws.running;
  ws.nic_free.assign(nd, 0.0);  // serialize_transfers only
  auto& nic_free = ws.nic_free;
  int completed = 0;

  auto push_event = [&](double time, int kind, int id) {
    heap.push_back(detail::SimEvent{time, seq++, kind, id});
    std::push_heap(heap.begin(), heap.end(), later);
  };

  auto start_task = [&](int v, double t) {
    const int d = p.device_of(v);
    ++running[d];
    out.tasks[v].start = t;
    const double w = realize(lat.compute_time(g, n, v, d), opt);
    push_event(t + w, kTaskDone, v);
  };

  auto make_runnable = [&](int v, double t) {
    const int d = p.device_of(v);
    if (running[d] < n.device(d).cores && fifo[d].empty()) {
      start_task(v, t);
    } else {
      fifo[d].push_back(v);
    }
  };

  // Entry tasks become runnable at t = 0 in task-id order.
  for (int v = 0; v < nv; ++v) {
    if (remaining_inputs[v] == 0) make_runnable(v, 0.0);
  }
  // topological_order() throws on cyclic input; check up-front so a cyclic
  // graph cannot hang the event loop.
  (void)g.topological_order();

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const detail::SimEvent ev = heap.back();
    heap.pop_back();
    if (ev.kind == kTaskDone) {
      const int v = ev.id;
      out.tasks[v].finish = ev.time;
      ++completed;
      const int d = p.device_of(v);
      // Outputs start transmitting to every child's device - concurrently in
      // the paper's model, back-to-back through the NIC under contention.
      for (int e : g.out_edges(v)) {
        const int dl = p.device_of(g.edge(e).dst);
        const double c = realize(lat.comm_time(g, n, e, d, dl), opt);
        double start = ev.time;
        if (opt.serialize_transfers && dl != d) {
          start = std::max(start, nic_free[d]);
          nic_free[d] = start + c;
        }
        out.edge_start[e] = start;
        push_event(start + c, kTransferDone, e);
      }
      --running[d];
      if (!fifo[d].empty() && running[d] < n.device(d).cores) {
        const int next = fifo[d].front();
        fifo[d].pop_front();
        start_task(next, ev.time);
      }
    } else {
      const int e = ev.id;
      out.edge_finish[e] = ev.time;
      const int child = g.edge(e).dst;
      if (--remaining_inputs[child] == 0) make_runnable(child, ev.time);
    }
  }

  if (completed != nv) {
    throw std::logic_error("simulate: not all tasks completed (cyclic graph?)");
  }

  double first_start = out.tasks[0].start, last_finish = out.tasks[0].finish;
  for (const TaskTiming& t : out.tasks) {
    first_start = std::min(first_start, t.start);
    last_finish = std::max(last_finish, t.finish);
  }
  out.makespan = last_finish - first_start;
}

Schedule simulate(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                  const LatencyModel& lat, const SimOptions& opt) {
  SimWorkspace ws;
  Schedule sched;
  simulate_into(g, n, p, lat, ws, sched, opt);
  return sched;
}

double makespan(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                const LatencyModel& lat) {
  return simulate(g, n, p, lat).makespan;
}

double earliest_start_on(const Schedule& sched, const TaskGraph& g,
                         const DeviceNetwork& n, const Placement& p,
                         const LatencyModel& lat, int v, int d) {
  double est = 0.0;
  for (int e : g.in_edges(v)) {
    const int parent = g.edge(e).src;
    const int pd = p.device_of(parent);
    est = std::max(est, sched.tasks[parent].finish + lat.comm_time(g, n, e, pd, d));
  }
  return est;
}

double earliest_start_on_queued(const Schedule& sched, const TaskGraph& g,
                                const DeviceNetwork& n, const Placement& p,
                                const LatencyModel& lat, int v, int d) {
  double est = earliest_start_on(sched, g, n, p, lat, v, d);
  // Tasks currently scheduled to start before v would occupy device d ahead
  // of it; tasks starting later (v's descendants and unrelated late work)
  // would queue behind v instead.
  for (int u = 0; u < g.num_tasks(); ++u) {
    if (u == v || p.device_of(u) != d) continue;
    if (sched.tasks[u].start >= sched.tasks[v].start) continue;
    est = std::max(est, sched.tasks[u].finish);
  }
  return est;
}

}  // namespace giph
