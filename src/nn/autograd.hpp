#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.hpp"

namespace giph::nn {

class Node;
/// Handle to a node of the dynamically built computation graph. Graphs are
/// rebuilt per forward pass (define-by-run); parameters are long-lived leaf
/// nodes whose gradients accumulate until the optimizer consumes them.
using Var = std::shared_ptr<Node>;

class Node {
 public:
  Matrix value;
  Matrix grad;  ///< allocated lazily on first accumulation
  bool requires_grad = false;
  std::uint64_t id = 0;  ///< creation order (reverse-topological backward)
  std::vector<Var> inputs;
  /// Accumulates into inputs' grads given this->grad; null for leaves and for
  /// subgraphs that do not require gradients.
  std::function<void(const Node&)> backward_fn;

  Matrix& ensure_grad() {
    if (grad.size() == 0) grad = Matrix::zeros(value.rows(), value.cols());
    return grad;
  }
};

/// Leaf with no gradient (e.g. input features).
Var constant(Matrix v);
/// Leaf with gradient accumulation (trainable parameter).
Var parameter(Matrix v);

/// Reverse-mode accumulation from `root` (any shape; seeded with ones).
/// Parameter gradients accumulate across calls until zeroed by the optimizer.
void backward(const Var& root);

// ---- operators -----------------------------------------------------------

Var matmul(const Var& a, const Var& b);
Var add(const Var& a, const Var& b);          // same shape
Var add_rowvec(const Var& a, const Var& b);   // b: 1 x c, broadcast over rows
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);          // elementwise
Var scale(const Var& a, double s);

Var relu(const Var& a);
Var tanh_act(const Var& a);
Var sigmoid_act(const Var& a);

Var concat_cols(const std::vector<Var>& xs);  // same rows
Var concat_rows(const std::vector<Var>& xs);  // same cols
Var slice_cols(const Var& a, int c0, int c1); // [c0, c1)
Var slice_rows(const Var& a, int r0, int r1);
inline Var row(const Var& a, int r) { return slice_rows(a, r, r + 1); }
Var gather_rows(const Var& a, std::vector<int> rows);

Var transpose_of(const Var& a);

Var sum_rows(const Var& a);   // (r x c) -> (1 x c)
Var mean_rows(const Var& a);
Var sum_all(const Var& a);    // -> 1 x 1

/// Grouped row mean: out row g = mean of a's rows [offsets[g], offsets[g+1]).
/// offsets must be ascending with offsets.front() == 0 and offsets.back() ==
/// rows(a). The batched equivalent of calling mean_rows on each contiguous
/// slice — same zero-initialized ascending-row accumulation, same
/// 1.0 / max(1, k) scale factor, so each output row is bitwise identical to
/// the per-group mean_rows result. An empty group yields a zero row. With
/// identity_single, size-1 groups copy their row unscaled instead — matching
/// callers that skip the mean entirely for a lone row (GraphSAGE), which
/// preserves -0.0 where (0.0 + x) * 1.0 would not.
Var segment_mean_rows(const Var& a, std::vector<int> offsets,
                      bool identity_single = false);

/// Column-vector softmax / log-softmax (k x 1), numerically stabilized.
Var softmax_col(const Var& a);
Var log_softmax_col(const Var& a);

/// Scalar element (r, c) as a 1 x 1 node.
Var pick(const Var& a, int r, int c);

/// 1 x 1 node equal to sum_i weights[i] * scalars[i] (each scalar is 1 x 1).
/// Used to assemble the REINFORCE loss in a single node.
Var weighted_sum(const std::vector<Var>& scalars, const std::vector<double>& weights);

/// Number of nodes reachable from root (diagnostics / tests).
std::size_t graph_size(const Var& root);

}  // namespace giph::nn
