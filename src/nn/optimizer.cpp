#include "nn/optimizer.hpp"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace giph::nn {
namespace {

void write_matrix(std::ostream& out, const Matrix& m) {
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      out << m(i, j) << (j + 1 == m.cols() ? '\n' : ' ');
    }
  }
}

void read_matrix(std::istream& in, Matrix& m) {
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) in >> m(i, j);
  }
}

}  // namespace

double clip_grad_norm(const std::vector<Var>& params, double max_norm) {
  double sq = 0.0;
  for (const Var& p : params) {
    if (p->grad.size() == 0) continue;
    for (int i = 0; i < p->grad.rows(); ++i) {
      for (int j = 0; j < p->grad.cols(); ++j) sq += p->grad(i, j) * p->grad(i, j);
    }
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const double s = max_norm / norm;
    for (const Var& p : params) {
      if (p->grad.size() > 0) p->grad *= s;
    }
  }
  return norm;
}

void copy_values(const std::vector<Var>& src, const std::vector<Var>& dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("copy_values: parameter count mismatch");
  }
  for (std::size_t k = 0; k < src.size(); ++k) {
    if (!src[k]->value.same_shape(dst[k]->value)) {
      throw std::invalid_argument("copy_values: parameter shape mismatch");
    }
    dst[k]->value = src[k]->value;
  }
}

std::vector<Matrix> take_grads(const std::vector<Var>& params) {
  std::vector<Matrix> grads;
  grads.reserve(params.size());
  for (const Var& p : params) {
    grads.push_back(std::move(p->grad));
    p->grad = Matrix();
  }
  return grads;
}

void add_grads(std::vector<Matrix>& accum, std::vector<Matrix>&& grads) {
  if (accum.empty()) accum.resize(grads.size());
  if (accum.size() != grads.size()) {
    throw std::invalid_argument("add_grads: buffer count mismatch");
  }
  for (std::size_t k = 0; k < grads.size(); ++k) {
    if (grads[k].size() == 0) continue;
    if (accum[k].size() == 0) {
      accum[k] = std::move(grads[k]);
    } else {
      accum[k] += grads[k];
    }
  }
}

void install_grads(const std::vector<Var>& params, std::vector<Matrix>&& accum) {
  if (params.size() != accum.size()) {
    throw std::invalid_argument("install_grads: buffer count mismatch");
  }
  for (std::size_t k = 0; k < params.size(); ++k) params[k]->grad = std::move(accum[k]);
  accum.clear();
}

Adam::Adam(std::vector<Var> params, double lr, double beta1, double beta2, double eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    m_.emplace_back(Matrix::zeros(p->value.rows(), p->value.cols()));
    v_.emplace_back(Matrix::zeros(p->value.rows(), p->value.cols()));
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, t_);
  const double bc2 = 1.0 - std::pow(beta2_, t_);
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Var& p = params_[k];
    if (p->grad.size() == 0) continue;  // parameter unused this round
    Matrix& m = m_[k];
    Matrix& v = v_[k];
    for (int i = 0; i < p->value.rows(); ++i) {
      for (int j = 0; j < p->value.cols(); ++j) {
        const double g = p->grad(i, j);
        m(i, j) = beta1_ * m(i, j) + (1.0 - beta1_) * g;
        v(i, j) = beta2_ * v(i, j) + (1.0 - beta2_) * g * g;
        const double mhat = m(i, j) / bc1;
        const double vhat = v(i, j) / bc2;
        p->value(i, j) -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      }
    }
  }
  zero_grad();
}

void Adam::zero_grad() {
  for (const Var& p : params_) p->grad = Matrix();
}

void Adam::save(std::ostream& out) const {
  const auto old_precision = out.precision(std::numeric_limits<double>::max_digits10);
  out << "adam v1\n"
      << t_ << " " << lr_ << " " << beta1_ << " " << beta2_ << " " << eps_ << "\n"
      << params_.size() << "\n";
  for (std::size_t k = 0; k < params_.size(); ++k) {
    out << m_[k].rows() << " " << m_[k].cols() << "\n";
    write_matrix(out, m_[k]);
    write_matrix(out, v_[k]);
  }
  out.precision(old_precision);
}

void Adam::load(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  if (!in || magic != "adam" || version != "v1") {
    throw std::runtime_error("Adam::load: bad header");
  }
  in >> t_ >> lr_ >> beta1_ >> beta2_ >> eps_;
  std::size_t count = 0;
  in >> count;
  if (!in || count != params_.size()) {
    throw std::runtime_error("Adam::load: parameter count mismatch");
  }
  for (std::size_t k = 0; k < params_.size(); ++k) {
    int rows = 0, cols = 0;
    in >> rows >> cols;
    if (!in || rows != m_[k].rows() || cols != m_[k].cols()) {
      throw std::runtime_error("Adam::load: moment shape mismatch");
    }
    read_matrix(in, m_[k]);
    read_matrix(in, v_[k]);
  }
  if (!in) throw std::runtime_error("Adam::load: truncated stream");
}

}  // namespace giph::nn
