#include "nn/layers.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/checked_file.hpp"

namespace giph::nn {

Matrix xavier_uniform(int in, int out, std::mt19937_64& rng) {
  const double limit = std::sqrt(6.0 / (in + out));
  std::uniform_real_distribution<double> d(-limit, limit);
  Matrix m(in, out);
  for (int i = 0; i < in; ++i) {
    for (int j = 0; j < out; ++j) m(i, j) = d(rng);
  }
  return m;
}

Var ParamRegistry::create(const std::string& name, Matrix init) {
  for (const std::string& n : names_) {
    if (n == name) throw std::invalid_argument("ParamRegistry: duplicate name " + name);
  }
  names_.push_back(name);
  params_.push_back(parameter(std::move(init)));
  return params_.back();
}

std::size_t ParamRegistry::num_scalars() const {
  std::size_t n = 0;
  for (const Var& p : params_) n += p->value.size();
  return n;
}

void ParamRegistry::zero_grad() {
  for (const Var& p : params_) p->grad = Matrix();
}

void ParamRegistry::save(std::ostream& out) const {
  out.precision(17);
  out << "giph-params v1\n" << params_.size() << "\n";
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Matrix& m = params_[i]->value;
    out << names_[i] << " " << m.rows() << " " << m.cols() << "\n";
    for (int r = 0; r < m.rows(); ++r) {
      for (int c = 0; c < m.cols(); ++c) {
        out << m(r, c) << (c + 1 == m.cols() ? '\n' : ' ');
      }
    }
  }
  if (!out) throw std::runtime_error("ParamRegistry::save: write failed");
}

void ParamRegistry::save(const std::string& path) const {
  // Checksum + length framing with a write-to-temp + atomic-rename commit:
  // a crash mid-save never tears the previous file, and a torn or corrupted
  // copy fails loudly at load instead of silently feeding garbage weights.
  std::ostringstream payload;
  save(payload);
  util::write_checked_file(path, "giph-params", payload.str());
}

void ParamRegistry::load(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  if (magic != "giph-params" || version != "v1") {
    throw std::runtime_error("ParamRegistry::load: bad header");
  }
  std::size_t count = 0;
  in >> count;
  if (count != params_.size()) {
    throw std::runtime_error("ParamRegistry::load: parameter count mismatch");
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::string name;
    int rows = 0, cols = 0;
    in >> name >> rows >> cols;
    if (name != names_[i] || rows != params_[i]->value.rows() ||
        cols != params_[i]->value.cols()) {
      throw std::runtime_error("ParamRegistry::load: mismatch at " + name);
    }
    Matrix& m = params_[i]->value;
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) in >> m(r, c);
    }
  }
  if (!in) throw std::runtime_error("ParamRegistry::load: truncated file");
}

void ParamRegistry::load(const std::string& path) {
  // read_checked_file validates length + checksum when the frame is present
  // and passes legacy unframed files through untouched.
  std::istringstream in(util::read_checked_file(path, "giph-params"));
  load(in);
}

Var apply_activation(const Var& x, Activation act) {
  switch (act) {
    case Activation::kNone: return x;
    case Activation::kRelu: return relu(x);
    case Activation::kTanh: return tanh_act(x);
    case Activation::kSigmoid: return sigmoid_act(x);
  }
  throw std::logic_error("apply_activation: unknown activation");
}

Linear::Linear(ParamRegistry& reg, const std::string& name, int in, int out,
               std::mt19937_64& rng) {
  W_ = reg.create(name + ".W", xavier_uniform(in, out, rng));
  b_ = reg.create(name + ".b", Matrix::zeros(1, out));
}

MLP::MLP(ParamRegistry& reg, const std::string& name, const std::vector<int>& dims,
         std::mt19937_64& rng, Activation hidden, Activation output)
    : hidden_(hidden), output_(output) {
  if (dims.size() < 2) throw std::invalid_argument("MLP: need at least in/out dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(reg, name + ".l" + std::to_string(i), dims[i], dims[i + 1], rng);
  }
  out_dim_ = dims.back();
}

Var MLP::operator()(Var x) const {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    x = layers_[i](x);
    x = apply_activation(x, i + 1 == layers_.size() ? output_ : hidden_);
  }
  return x;
}

LSTMCell::LSTMCell(ParamRegistry& reg, const std::string& name, int input_dim,
                   int hidden_dim, std::mt19937_64& rng)
    : hidden_(hidden_dim) {
  w_ih_ = reg.create(name + ".w_ih", xavier_uniform(input_dim, 4 * hidden_dim, rng));
  w_hh_ = reg.create(name + ".w_hh", xavier_uniform(hidden_dim, 4 * hidden_dim, rng));
  Matrix b = Matrix::zeros(1, 4 * hidden_dim);
  // Forget-gate bias starts at 1 (standard trick for gradient flow).
  for (int j = hidden_dim; j < 2 * hidden_dim; ++j) b(0, j) = 1.0;
  b_ = reg.create(name + ".b", std::move(b));
}

LSTMCell::State LSTMCell::initial_state() const {
  return State{constant(Matrix::zeros(1, hidden_)), constant(Matrix::zeros(1, hidden_))};
}

LSTMCell::State LSTMCell::operator()(const Var& x, const State& s) const {
  const Var gates = add_rowvec(add(matmul(x, w_ih_), matmul(s.h, w_hh_)), b_);
  const Var i = sigmoid_act(slice_cols(gates, 0, hidden_));
  const Var f = sigmoid_act(slice_cols(gates, hidden_, 2 * hidden_));
  const Var g = tanh_act(slice_cols(gates, 2 * hidden_, 3 * hidden_));
  const Var o = sigmoid_act(slice_cols(gates, 3 * hidden_, 4 * hidden_));
  const Var c = add(mul(f, s.c), mul(i, g));
  const Var h = mul(o, tanh_act(c));
  return State{h, c};
}

}  // namespace giph::nn
