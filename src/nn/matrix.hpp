#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace giph::nn {

/// Dense row-major matrix of doubles. The shapes used by GiPH are tiny
/// (embedding dims 4-16), so a straightforward implementation is both simple
/// and fast enough; all autograd ops are built on top of this type.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols, fill) {
    assert(rows >= 0 && cols >= 0);
  }

  static Matrix zeros(int rows, int cols) { return Matrix(rows, cols, 0.0); }
  static Matrix from_row(const std::vector<double>& v) {
    Matrix m(1, static_cast<int>(v.size()));
    m.data_ = v;
    return m;
  }
  static Matrix from_col(const std::vector<double>& v) {
    Matrix m(static_cast<int>(v.size()), 1);
    m.data_ = v;
    return m;
  }
  static Matrix scalar(double v) {
    Matrix m(1, 1);
    m(0, 0) = v;
    return m;
  }

  int rows() const noexcept { return rows_; }
  int cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool same_shape(const Matrix& o) const noexcept {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  double& operator()(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  Matrix& operator+=(const Matrix& o) {
    assert(same_shape(o));
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }
  Matrix& operator-=(const Matrix& o) {
    assert(same_shape(o));
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }
  Matrix& operator*=(double s) {
    for (double& x : data_) x *= s;
    return *this;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A^T * B (avoids materializing the transpose).
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A * B^T.
Matrix matmul_nt(const Matrix& a, const Matrix& b);
Matrix transpose(const Matrix& a);
Matrix operator+(const Matrix& a, const Matrix& b);
Matrix operator-(const Matrix& a, const Matrix& b);
Matrix hadamard(const Matrix& a, const Matrix& b);
Matrix operator*(const Matrix& a, double s);

/// Max-norm of the difference; used by tests and gradient checks.
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace giph::nn
