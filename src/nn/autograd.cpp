#include "nn/autograd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace giph::nn {
namespace {

std::atomic<std::uint64_t> g_next_id{1};

Var make_node(Matrix value, std::vector<Var> inputs,
              std::function<void(const Node&)> backward_fn) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->inputs = std::move(inputs);
  n->id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  for (const Var& in : n->inputs) {
    if (in->requires_grad) {
      n->requires_grad = true;
      break;
    }
  }
  if (n->requires_grad) n->backward_fn = std::move(backward_fn);
  return n;
}

void collect(const Var& root, std::vector<Node*>& order) {
  std::unordered_set<Node*> seen;
  std::vector<Node*> stack{root.get()};
  seen.insert(root.get());
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    order.push_back(n);
    for (const Var& in : n->inputs) {
      if (in->requires_grad && seen.insert(in.get()).second) stack.push_back(in.get());
    }
  }
  std::sort(order.begin(), order.end(), [](Node* a, Node* b) { return a->id > b->id; });
}

}  // namespace

Var constant(Matrix v) {
  auto n = std::make_shared<Node>();
  n->value = std::move(v);
  n->id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  return n;
}

Var parameter(Matrix v) {
  Var n = constant(std::move(v));
  n->requires_grad = true;
  return n;
}

void backward(const Var& root) {
  if (!root->requires_grad) return;
  std::vector<Node*> order;
  collect(root, order);
  Matrix& g = root->ensure_grad();
  for (int i = 0; i < g.rows(); ++i) {
    for (int j = 0; j < g.cols(); ++j) g(i, j) += 1.0;
  }
  for (Node* n : order) {
    if (n->backward_fn) n->backward_fn(*n);
  }
  // Interior gradients are scratch space: release them (and the closures) so
  // repeated episodes do not hold onto stale state. Parameters (leaves) keep
  // their accumulated grads for the optimizer.
  for (Node* n : order) {
    if (n->backward_fn) {
      n->grad = Matrix();
      n->backward_fn = nullptr;
    }
  }
}

std::size_t graph_size(const Var& root) {
  std::unordered_set<Node*> seen;
  std::vector<Node*> stack{root.get()};
  seen.insert(root.get());
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    for (const Var& in : n->inputs) {
      if (seen.insert(in.get()).second) stack.push_back(in.get());
    }
  }
  return seen.size();
}

Var matmul(const Var& a, const Var& b) {
  return make_node(matmul(a->value, b->value), {a, b}, [](const Node& n) {
    const Var& a = n.inputs[0];
    const Var& b = n.inputs[1];
    if (a->requires_grad) a->ensure_grad() += matmul_nt(n.grad, b->value);
    if (b->requires_grad) b->ensure_grad() += matmul_tn(a->value, n.grad);
  });
}

Var add(const Var& a, const Var& b) {
  if (!a->value.same_shape(b->value)) throw std::invalid_argument("add: shape mismatch");
  return make_node(a->value + b->value, {a, b}, [](const Node& n) {
    for (const Var& in : n.inputs) {
      if (in->requires_grad) in->ensure_grad() += n.grad;
    }
  });
}

Var add_rowvec(const Var& a, const Var& b) {
  if (b->value.rows() != 1 || b->value.cols() != a->value.cols()) {
    throw std::invalid_argument("add_rowvec: b must be 1 x cols(a)");
  }
  Matrix v = a->value;
  for (int i = 0; i < v.rows(); ++i) {
    for (int j = 0; j < v.cols(); ++j) v(i, j) += b->value(0, j);
  }
  return make_node(std::move(v), {a, b}, [](const Node& n) {
    const Var& a = n.inputs[0];
    const Var& b = n.inputs[1];
    if (a->requires_grad) a->ensure_grad() += n.grad;
    if (b->requires_grad) {
      Matrix& g = b->ensure_grad();
      for (int i = 0; i < n.grad.rows(); ++i) {
        for (int j = 0; j < n.grad.cols(); ++j) g(0, j) += n.grad(i, j);
      }
    }
  });
}

Var sub(const Var& a, const Var& b) {
  if (!a->value.same_shape(b->value)) throw std::invalid_argument("sub: shape mismatch");
  return make_node(a->value - b->value, {a, b}, [](const Node& n) {
    const Var& a = n.inputs[0];
    const Var& b = n.inputs[1];
    if (a->requires_grad) a->ensure_grad() += n.grad;
    if (b->requires_grad) b->ensure_grad() -= n.grad;
  });
}

Var mul(const Var& a, const Var& b) {
  if (!a->value.same_shape(b->value)) throw std::invalid_argument("mul: shape mismatch");
  return make_node(hadamard(a->value, b->value), {a, b}, [](const Node& n) {
    const Var& a = n.inputs[0];
    const Var& b = n.inputs[1];
    if (a->requires_grad) a->ensure_grad() += hadamard(n.grad, b->value);
    if (b->requires_grad) b->ensure_grad() += hadamard(n.grad, a->value);
  });
}

Var scale(const Var& a, double s) {
  return make_node(a->value * s, {a}, [s](const Node& n) {
    n.inputs[0]->ensure_grad() += n.grad * s;
  });
}

Var relu(const Var& a) {
  Matrix v = a->value;
  for (int i = 0; i < v.rows(); ++i) {
    for (int j = 0; j < v.cols(); ++j) v(i, j) = std::max(0.0, v(i, j));
  }
  return make_node(std::move(v), {a}, [](const Node& n) {
    Matrix& g = n.inputs[0]->ensure_grad();
    const Matrix& x = n.inputs[0]->value;
    for (int i = 0; i < g.rows(); ++i) {
      for (int j = 0; j < g.cols(); ++j) {
        if (x(i, j) > 0.0) g(i, j) += n.grad(i, j);
      }
    }
  });
}

Var tanh_act(const Var& a) {
  Matrix v = a->value;
  for (int i = 0; i < v.rows(); ++i) {
    for (int j = 0; j < v.cols(); ++j) v(i, j) = std::tanh(v(i, j));
  }
  return make_node(std::move(v), {a}, [](const Node& n) {
    Matrix& g = n.inputs[0]->ensure_grad();
    for (int i = 0; i < g.rows(); ++i) {
      for (int j = 0; j < g.cols(); ++j) {
        const double y = n.value(i, j);
        g(i, j) += n.grad(i, j) * (1.0 - y * y);
      }
    }
  });
}

Var sigmoid_act(const Var& a) {
  Matrix v = a->value;
  for (int i = 0; i < v.rows(); ++i) {
    for (int j = 0; j < v.cols(); ++j) v(i, j) = 1.0 / (1.0 + std::exp(-v(i, j)));
  }
  return make_node(std::move(v), {a}, [](const Node& n) {
    Matrix& g = n.inputs[0]->ensure_grad();
    for (int i = 0; i < g.rows(); ++i) {
      for (int j = 0; j < g.cols(); ++j) {
        const double y = n.value(i, j);
        g(i, j) += n.grad(i, j) * y * (1.0 - y);
      }
    }
  });
}

Var concat_cols(const std::vector<Var>& xs) {
  if (xs.empty()) throw std::invalid_argument("concat_cols: empty");
  const int rows = xs[0]->value.rows();
  int cols = 0;
  for (const Var& x : xs) {
    if (x->value.rows() != rows) throw std::invalid_argument("concat_cols: row mismatch");
    cols += x->value.cols();
  }
  Matrix v(rows, cols);
  int off = 0;
  for (const Var& x : xs) {
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < x->value.cols(); ++j) v(i, off + j) = x->value(i, j);
    }
    off += x->value.cols();
  }
  return make_node(std::move(v), xs, [](const Node& n) {
    int off = 0;
    for (const Var& in : n.inputs) {
      const int c = in->value.cols();
      if (in->requires_grad) {
        Matrix& g = in->ensure_grad();
        for (int i = 0; i < g.rows(); ++i) {
          for (int j = 0; j < c; ++j) g(i, j) += n.grad(i, off + j);
        }
      }
      off += c;
    }
  });
}

Var concat_rows(const std::vector<Var>& xs) {
  if (xs.empty()) throw std::invalid_argument("concat_rows: empty");
  const int cols = xs[0]->value.cols();
  int rows = 0;
  for (const Var& x : xs) {
    if (x->value.cols() != cols) throw std::invalid_argument("concat_rows: col mismatch");
    rows += x->value.rows();
  }
  Matrix v(rows, cols);
  int off = 0;
  for (const Var& x : xs) {
    for (int i = 0; i < x->value.rows(); ++i) {
      for (int j = 0; j < cols; ++j) v(off + i, j) = x->value(i, j);
    }
    off += x->value.rows();
  }
  return make_node(std::move(v), xs, [](const Node& n) {
    int off = 0;
    for (const Var& in : n.inputs) {
      const int r = in->value.rows();
      if (in->requires_grad) {
        Matrix& g = in->ensure_grad();
        for (int i = 0; i < r; ++i) {
          for (int j = 0; j < g.cols(); ++j) g(i, j) += n.grad(off + i, j);
        }
      }
      off += r;
    }
  });
}

Var slice_cols(const Var& a, int c0, int c1) {
  if (c0 < 0 || c1 > a->value.cols() || c0 >= c1) {
    throw std::invalid_argument("slice_cols: bad range");
  }
  Matrix v(a->value.rows(), c1 - c0);
  for (int i = 0; i < v.rows(); ++i) {
    for (int j = 0; j < v.cols(); ++j) v(i, j) = a->value(i, c0 + j);
  }
  return make_node(std::move(v), {a}, [c0](const Node& n) {
    Matrix& g = n.inputs[0]->ensure_grad();
    for (int i = 0; i < n.grad.rows(); ++i) {
      for (int j = 0; j < n.grad.cols(); ++j) g(i, c0 + j) += n.grad(i, j);
    }
  });
}

Var slice_rows(const Var& a, int r0, int r1) {
  if (r0 < 0 || r1 > a->value.rows() || r0 >= r1) {
    throw std::invalid_argument("slice_rows: bad range");
  }
  Matrix v(r1 - r0, a->value.cols());
  for (int i = 0; i < v.rows(); ++i) {
    for (int j = 0; j < v.cols(); ++j) v(i, j) = a->value(r0 + i, j);
  }
  return make_node(std::move(v), {a}, [r0](const Node& n) {
    Matrix& g = n.inputs[0]->ensure_grad();
    for (int i = 0; i < n.grad.rows(); ++i) {
      for (int j = 0; j < n.grad.cols(); ++j) g(r0 + i, j) += n.grad(i, j);
    }
  });
}

Var gather_rows(const Var& a, std::vector<int> rows) {
  Matrix v(static_cast<int>(rows.size()), a->value.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] < 0 || rows[i] >= a->value.rows()) {
      throw std::invalid_argument("gather_rows: index out of range");
    }
    for (int j = 0; j < a->value.cols(); ++j) {
      v(static_cast<int>(i), j) = a->value(rows[i], j);
    }
  }
  return make_node(std::move(v), {a}, [rows = std::move(rows)](const Node& n) {
    Matrix& g = n.inputs[0]->ensure_grad();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (int j = 0; j < n.grad.cols(); ++j) {
        g(rows[i], j) += n.grad(static_cast<int>(i), j);
      }
    }
  });
}

Var transpose_of(const Var& a) {
  return make_node(transpose(a->value), {a}, [](const Node& n) {
    n.inputs[0]->ensure_grad() += transpose(n.grad);
  });
}

Var sum_rows(const Var& a) {
  Matrix v(1, a->value.cols());
  for (int i = 0; i < a->value.rows(); ++i) {
    for (int j = 0; j < a->value.cols(); ++j) v(0, j) += a->value(i, j);
  }
  return make_node(std::move(v), {a}, [](const Node& n) {
    Matrix& g = n.inputs[0]->ensure_grad();
    for (int i = 0; i < g.rows(); ++i) {
      for (int j = 0; j < g.cols(); ++j) g(i, j) += n.grad(0, j);
    }
  });
}

Var mean_rows(const Var& a) {
  const double inv = 1.0 / std::max(1, a->value.rows());
  return scale(sum_rows(a), inv);
}

Var segment_mean_rows(const Var& a, std::vector<int> offsets, bool identity_single) {
  const int rows = a->value.rows();
  const int cols = a->value.cols();
  if (offsets.size() < 2 || offsets.front() != 0 || offsets.back() != rows) {
    throw std::invalid_argument("segment_mean_rows: bad offsets");
  }
  for (std::size_t g = 1; g < offsets.size(); ++g) {
    if (offsets[g] < offsets[g - 1]) {
      throw std::invalid_argument("segment_mean_rows: offsets not ascending");
    }
  }
  const int groups = static_cast<int>(offsets.size()) - 1;
  Matrix v(groups, cols);
  for (int g = 0; g < groups; ++g) {
    const int r0 = offsets[g];
    const int r1 = offsets[g + 1];
    if (identity_single && r1 - r0 == 1) {
      for (int j = 0; j < cols; ++j) v(g, j) = a->value(r0, j);
      continue;
    }
    // Mirrors mean_rows exactly: zero-initialized ascending accumulation,
    // then one multiply by the inverse count.
    const double inv = 1.0 / std::max(1, r1 - r0);
    for (int i = r0; i < r1; ++i) {
      for (int j = 0; j < cols; ++j) v(g, j) += a->value(i, j);
    }
    for (int j = 0; j < cols; ++j) v(g, j) *= inv;
  }
  return make_node(std::move(v), {a},
                   [offsets = std::move(offsets), identity_single](const Node& n) {
    Matrix& g = n.inputs[0]->ensure_grad();
    const int groups = static_cast<int>(offsets.size()) - 1;
    for (int s = 0; s < groups; ++s) {
      const int r0 = offsets[s];
      const int r1 = offsets[s + 1];
      const double inv =
          identity_single && r1 - r0 == 1 ? 1.0 : 1.0 / std::max(1, r1 - r0);
      for (int i = r0; i < r1; ++i) {
        for (int j = 0; j < g.cols(); ++j) g(i, j) += n.grad(s, j) * inv;
      }
    }
  });
}

Var sum_all(const Var& a) {
  double s = 0.0;
  for (int i = 0; i < a->value.rows(); ++i) {
    for (int j = 0; j < a->value.cols(); ++j) s += a->value(i, j);
  }
  return make_node(Matrix::scalar(s), {a}, [](const Node& n) {
    Matrix& g = n.inputs[0]->ensure_grad();
    const double go = n.grad(0, 0);
    for (int i = 0; i < g.rows(); ++i) {
      for (int j = 0; j < g.cols(); ++j) g(i, j) += go;
    }
  });
}

Var softmax_col(const Var& a) {
  if (a->value.cols() != 1) throw std::invalid_argument("softmax_col: expects k x 1");
  const int k = a->value.rows();
  double mx = a->value(0, 0);
  for (int i = 1; i < k; ++i) mx = std::max(mx, a->value(i, 0));
  Matrix v(k, 1);
  double z = 0.0;
  for (int i = 0; i < k; ++i) {
    v(i, 0) = std::exp(a->value(i, 0) - mx);
    z += v(i, 0);
  }
  for (int i = 0; i < k; ++i) v(i, 0) /= z;
  return make_node(std::move(v), {a}, [](const Node& n) {
    Matrix& g = n.inputs[0]->ensure_grad();
    double dot = 0.0;
    for (int i = 0; i < n.value.rows(); ++i) dot += n.value(i, 0) * n.grad(i, 0);
    for (int i = 0; i < n.value.rows(); ++i) {
      g(i, 0) += n.value(i, 0) * (n.grad(i, 0) - dot);
    }
  });
}

Var log_softmax_col(const Var& a) {
  if (a->value.cols() != 1) throw std::invalid_argument("log_softmax_col: expects k x 1");
  const int k = a->value.rows();
  double mx = a->value(0, 0);
  for (int i = 1; i < k; ++i) mx = std::max(mx, a->value(i, 0));
  double z = 0.0;
  for (int i = 0; i < k; ++i) z += std::exp(a->value(i, 0) - mx);
  const double lse = mx + std::log(z);
  Matrix v(k, 1);
  for (int i = 0; i < k; ++i) v(i, 0) = a->value(i, 0) - lse;
  return make_node(std::move(v), {a}, [](const Node& n) {
    Matrix& g = n.inputs[0]->ensure_grad();
    double gsum = 0.0;
    for (int i = 0; i < n.value.rows(); ++i) gsum += n.grad(i, 0);
    for (int i = 0; i < n.value.rows(); ++i) {
      g(i, 0) += n.grad(i, 0) - std::exp(n.value(i, 0)) * gsum;
    }
  });
}

Var pick(const Var& a, int r, int c) {
  if (r < 0 || r >= a->value.rows() || c < 0 || c >= a->value.cols()) {
    throw std::invalid_argument("pick: index out of range");
  }
  return make_node(Matrix::scalar(a->value(r, c)), {a}, [r, c](const Node& n) {
    n.inputs[0]->ensure_grad()(r, c) += n.grad(0, 0);
  });
}

Var weighted_sum(const std::vector<Var>& scalars, const std::vector<double>& weights) {
  if (scalars.size() != weights.size() || scalars.empty()) {
    throw std::invalid_argument("weighted_sum: size mismatch or empty");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    if (scalars[i]->value.rows() != 1 || scalars[i]->value.cols() != 1) {
      throw std::invalid_argument("weighted_sum: inputs must be 1 x 1");
    }
    s += weights[i] * scalars[i]->value(0, 0);
  }
  return make_node(Matrix::scalar(s), scalars, [weights](const Node& n) {
    for (std::size_t i = 0; i < n.inputs.size(); ++i) {
      if (n.inputs[i]->requires_grad) {
        n.inputs[i]->ensure_grad()(0, 0) += weights[i] * n.grad(0, 0);
      }
    }
  });
}

}  // namespace giph::nn
