#pragma once

#include <iosfwd>
#include <random>
#include <string>
#include <vector>

#include "nn/autograd.hpp"

namespace giph::nn {

/// Xavier/Glorot uniform initialization for an (in x out) weight matrix.
Matrix xavier_uniform(int in, int out, std::mt19937_64& rng);

/// Owns a model's trainable parameters by name; provides save/load and
/// gradient clearing. Layers register their parameters here at construction.
class ParamRegistry {
 public:
  /// Creates and registers a parameter. Names must be unique.
  Var create(const std::string& name, Matrix init);

  const std::vector<Var>& params() const noexcept { return params_; }
  const std::vector<std::string>& names() const noexcept { return names_; }

  /// Total scalar parameter count.
  std::size_t num_scalars() const;

  void zero_grad();

  /// Plain-text serialization (name, shape, row-major values per parameter).
  /// The file form wraps the payload in util::write_checked_file's checksum +
  /// length frame and commits via write-to-temp + atomic rename, so torn or
  /// corrupted parameter files are detected at load (legacy unframed files
  /// remain loadable). The stream form writes/reads the raw payload — used by
  /// callers that embed parameters in a larger framed file (checkpoints,
  /// policy snapshots).
  void save(const std::string& path) const;
  void save(std::ostream& out) const;
  /// Loads values into already-registered parameters; shapes must match.
  void load(const std::string& path);
  void load(std::istream& in);

 private:
  std::vector<std::string> names_;
  std::vector<Var> params_;
};

enum class Activation { kNone, kRelu, kTanh, kSigmoid };

Var apply_activation(const Var& x, Activation act);

/// Affine layer y = x W + b with x of shape (n x in).
class Linear {
 public:
  Linear() = default;
  Linear(ParamRegistry& reg, const std::string& name, int in, int out,
         std::mt19937_64& rng);

  Var operator()(const Var& x) const { return add_rowvec(matmul(x, W_), b_); }

  const Var& weight() const { return W_; }
  const Var& bias() const { return b_; }

 private:
  Var W_, b_;
};

/// Feed-forward network with the given layer dims, hidden activation applied
/// between layers and an optional output activation.
class MLP {
 public:
  MLP() = default;
  MLP(ParamRegistry& reg, const std::string& name, const std::vector<int>& dims,
      std::mt19937_64& rng, Activation hidden = Activation::kRelu,
      Activation output = Activation::kNone);

  Var operator()(Var x) const;

  int output_dim() const { return out_dim_; }

 private:
  std::vector<Linear> layers_;
  Activation hidden_ = Activation::kRelu;
  Activation output_ = Activation::kNone;
  int out_dim_ = 0;
};

/// Single LSTM cell with gate layout [input, forget, cell, output].
class LSTMCell {
 public:
  LSTMCell() = default;
  LSTMCell(ParamRegistry& reg, const std::string& name, int input_dim, int hidden_dim,
           std::mt19937_64& rng);

  struct State {
    Var h;  ///< 1 x hidden
    Var c;  ///< 1 x hidden
  };

  /// Zero initial state.
  State initial_state() const;

  /// One step: x is 1 x input_dim.
  State operator()(const Var& x, const State& s) const;

  int hidden_dim() const { return hidden_; }

 private:
  Var w_ih_, w_hh_, b_;
  int hidden_ = 0;
};

}  // namespace giph::nn
