#pragma once

#include <iosfwd>
#include <vector>

#include "nn/autograd.hpp"

namespace giph::nn {

/// Clips the global L2 norm of the accumulated gradients to `max_norm`.
/// Returns the pre-clip norm.
double clip_grad_norm(const std::vector<Var>& params, double max_norm);

// ---- per-worker gradient buffers ------------------------------------------
//
// Deterministic parallel rollouts keep one clone of the model per worker:
// parameter *values* are broadcast to the clones, each rollout's backward
// pass accumulates into the clone's private grads, and the per-episode
// gradients are then reduced into one accumulator in a fixed episode order.
// Because every reduction performs the same additions in the same order, the
// result is bitwise independent of the worker count.

/// Copies parameter values from `src` into `dst` (shapes must match
/// pairwise). Used to broadcast the master parameters to per-worker clones.
void copy_values(const std::vector<Var>& src, const std::vector<Var>& dst);

/// Moves the accumulated gradients out of `params` and clears them. Entries
/// of parameters untouched by the backward pass stay empty (0x0) matrices.
std::vector<Matrix> take_grads(const std::vector<Var>& params);

/// Elementwise-adds `grads` into `accum` (same layout as take_grads; empty
/// entries are skipped, and an empty accumulator slot adopts the incoming
/// matrix). The reduction order is exactly the caller's call order.
void add_grads(std::vector<Matrix>& accum, std::vector<Matrix>&& grads);

/// Installs `accum` as the parameters' gradients (consuming it) so the
/// optimizer can consume them; empty slots leave the parameter's grad empty.
void install_grads(const std::vector<Var>& params, std::vector<Matrix>&& accum);

/// Adam optimizer (Kingma & Ba). step() consumes and zeroes the accumulated
/// gradients of the registered parameters.
class Adam {
 public:
  explicit Adam(std::vector<Var> params, double lr = 0.01, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8);

  void step();
  void zero_grad();

  double learning_rate() const noexcept { return lr_; }
  void set_learning_rate(double lr) noexcept { lr_ = lr; }

  /// Serializes the optimizer state (step count, hyperparameters, first and
  /// second moments) so training can resume with an identical trajectory.
  /// Values round-trip exactly (max_digits10 precision).
  void save(std::ostream& out) const;
  /// Restores state written by save(); the registered parameter shapes must
  /// match. Throws std::runtime_error on mismatch or truncation.
  void load(std::istream& in);

 private:
  std::vector<Var> params_;
  std::vector<Matrix> m_, v_;
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
};

}  // namespace giph::nn
