#pragma once

#include <iosfwd>
#include <vector>

#include "nn/autograd.hpp"

namespace giph::nn {

/// Clips the global L2 norm of the accumulated gradients to `max_norm`.
/// Returns the pre-clip norm.
double clip_grad_norm(const std::vector<Var>& params, double max_norm);

/// Adam optimizer (Kingma & Ba). step() consumes and zeroes the accumulated
/// gradients of the registered parameters.
class Adam {
 public:
  explicit Adam(std::vector<Var> params, double lr = 0.01, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8);

  void step();
  void zero_grad();

  double learning_rate() const noexcept { return lr_; }
  void set_learning_rate(double lr) noexcept { lr_ = lr; }

  /// Serializes the optimizer state (step count, hyperparameters, first and
  /// second moments) so training can resume with an identical trajectory.
  /// Values round-trip exactly (max_digits10 precision).
  void save(std::ostream& out) const;
  /// Restores state written by save(); the registered parameter shapes must
  /// match. Throws std::runtime_error on mismatch or truncation.
  void load(std::istream& in);

 private:
  std::vector<Var> params_;
  std::vector<Matrix> m_, v_;
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
};

}  // namespace giph::nn
