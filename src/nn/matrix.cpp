#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace giph::nn {

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (int k = 0; k < a.rows(); ++k) {
    for (int i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) c(i, j) += aki * b(k, j);
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.rows(); ++j) {
      double s = 0.0;
      for (int k = 0; k < a.cols(); ++k) s += a(i, k) * b(j, k);
      c(i, j) = s;
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c += b;
  return c;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c -= b;
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  Matrix c = a;
  for (int i = 0; i < c.rows(); ++i) {
    for (int j = 0; j < c.cols(); ++j) c(i, j) *= b(i, j);
  }
  return c;
}

Matrix operator*(const Matrix& a, double s) {
  Matrix c = a;
  c *= s;
  return c;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  double m = 0.0;
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) m = std::max(m, std::abs(a(i, j) - b(i, j)));
  }
  return m;
}

}  // namespace giph::nn
