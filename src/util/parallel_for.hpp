#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace giph::util {

/// Number of worker threads a `threads` request resolves to: values >= 1 are
/// taken as-is, and <= 0 means "one per hardware thread" (at least 1).
int resolve_threads(int threads);

/// Runs body(i) for i in [0, count) across up to `threads` worker threads
/// (<= 0 = hardware concurrency). Indices are handed out dynamically (atomic
/// counter), so the mapping of index to thread is nondeterministic — the body
/// must write only to per-index state (e.g. slot i of a results vector) for
/// the overall result to be independent of the thread count. With threads
/// resolving to 1, or count <= 1, everything runs inline on the caller's
/// thread.
///
/// Exceptions thrown by the body are captured; the first one (lowest index)
/// is rethrown on the caller's thread after all workers have joined.
void parallel_for(int count, int threads, const std::function<void(int)>& body);

/// A pool of persistent worker threads for repeated fan-outs (e.g. one batch
/// of training rollouts per optimizer step): the threads are spawned once and
/// reused across run() calls, so a caller that fans out thousands of times
/// does not pay thread creation/teardown per batch.
///
/// run(count, body) executes body(index, worker) for index in [0, count).
/// Indices are handed out dynamically; `worker` identifies the executing
/// worker slot (stable across the pool's lifetime, in [0, threads())), which
/// lets callers attach per-worker state (scratch buffers, policy clones)
/// without locking. The caller's thread participates as worker 0. As with
/// parallel_for, the index->worker mapping is nondeterministic, so the body
/// must write only per-index (or per-worker) state for results to be
/// independent of the thread count.
///
/// Exceptions thrown by the body are captured and the one with the lowest
/// index is rethrown on the caller's thread after the fan-out completes.
/// run() must not be called concurrently or reentrantly.
class WorkerPool {
 public:
  /// Spawns threads-1 persistent workers (<= 0 = hardware concurrency).
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const noexcept { return threads_; }

  void run(int count, const std::function<void(int index, int worker)>& body);

 private:
  void worker_loop(int worker);
  void drain(int worker);

  int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  ///< bumped per run(); wakes the workers
  bool shutdown_ = false;
  int count_ = 0;
  const std::function<void(int, int)>* body_ = nullptr;
  int next_ = 0;     ///< next index to hand out (under mu_)
  int active_ = 0;   ///< workers still draining the current run
  std::exception_ptr first_error_;
  int first_error_index_ = -1;
};

}  // namespace giph::util
