#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace giph::util {

/// Number of worker threads a `threads` request resolves to: values >= 1 are
/// taken as-is, and <= 0 means "one per hardware thread" (at least 1).
int resolve_threads(int threads);

/// Runs body(i) for i in [0, count) across up to `threads` worker threads
/// (<= 0 = hardware concurrency). Indices are handed out dynamically (atomic
/// counter), so the mapping of index to thread is nondeterministic — the body
/// must write only to per-index state (e.g. slot i of a results vector) for
/// the overall result to be independent of the thread count. With threads
/// resolving to 1, or count <= 1, everything runs inline on the caller's
/// thread.
///
/// Exceptions thrown by the body are captured; the first one (lowest index)
/// is rethrown on the caller's thread after all workers have joined.
void parallel_for(int count, int threads, const std::function<void(int)>& body);

/// A pool of persistent worker threads for repeated fan-outs (e.g. one batch
/// of training rollouts per optimizer step): the threads are spawned once and
/// reused across run() calls, so a caller that fans out thousands of times
/// does not pay thread creation/teardown per batch.
///
/// run(count, body) executes body(index, worker) for index in [0, count).
/// Indices are handed out dynamically; `worker` identifies the executing
/// worker slot (stable across the pool's lifetime, in [0, threads())), which
/// lets callers attach per-worker state (scratch buffers, policy clones)
/// without locking. The caller's thread participates as worker 0. As with
/// parallel_for, the index->worker mapping is nondeterministic, so the body
/// must write only per-index (or per-worker) state for results to be
/// independent of the thread count.
///
/// Exceptions thrown by the body are captured and the one with the lowest
/// index is rethrown on the caller's thread after the fan-out completes.
/// run() must not be called concurrently or reentrantly.
class WorkerPool {
 public:
  /// Spawns threads-1 persistent workers (<= 0 = hardware concurrency).
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const noexcept { return threads_; }

  void run(int count, const std::function<void(int index, int worker)>& body);

  /// Queued-task mode, for streaming workloads (e.g. a serving daemon) where
  /// tasks arrive one at a time instead of as a counted fan-out. submit()
  /// enqueues `task`; a background worker eventually executes task(worker)
  /// with its worker slot id. With threads() == 1 there are no background
  /// workers, so the task runs inline on the submitting thread (as worker 0)
  /// before submit() returns. Throws std::runtime_error once the pool has
  /// been stopped; try_submit() returns false instead. An accepted task is
  /// guaranteed to execute exactly once, even when stop_and_drain() races the
  /// submit. submit() may be called concurrently from any number of threads
  /// and may interleave with run() fan-outs (queued tasks and fan-out indices
  /// never run on the same worker at the same time).
  void submit(std::function<void(int worker)> task);
  bool try_submit(std::function<void(int worker)> task);

  /// Stops admission (subsequent submits fail) and blocks until every
  /// accepted task has finished. Exceptions escaping a queued task are
  /// captured at execution time without wedging the pool — the remaining
  /// tasks still run — and the first captured one is rethrown here (then
  /// cleared). Idempotent; also invoked by the destructor, which swallows the
  /// rethrow. run() remains usable after stop_and_drain().
  void stop_and_drain();

  /// Tasks accepted but not yet finished (queued + in flight). Admission
  /// control for callers that shed load above a depth budget.
  int pending_tasks() const;

 private:
  void worker_loop(int worker);
  void drain(int worker);
  void run_one_queued(int worker, std::unique_lock<std::mutex>& lock);

  int threads_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::condition_variable idle_cv_;  ///< queued-task drain completion
  std::uint64_t generation_ = 0;  ///< bumped per run(); wakes the workers
  bool shutdown_ = false;
  bool accepting_ = true;  ///< false once stop_and_drain() begins
  int count_ = 0;
  const std::function<void(int, int)>* body_ = nullptr;
  int next_ = 0;     ///< next index to hand out (under mu_)
  int active_ = 0;   ///< workers still draining the current run
  std::exception_ptr first_error_;
  int first_error_index_ = -1;

  std::deque<std::function<void(int)>> queue_;  ///< submitted tasks (under mu_)
  int tasks_in_flight_ = 0;         ///< queued tasks currently executing
  std::exception_ptr task_error_;   ///< first exception from a queued task
};

}  // namespace giph::util
