#pragma once

#include <functional>

namespace giph::util {

/// Number of worker threads a `threads` request resolves to: values >= 1 are
/// taken as-is, and <= 0 means "one per hardware thread" (at least 1).
int resolve_threads(int threads);

/// Runs body(i) for i in [0, count) across up to `threads` worker threads
/// (<= 0 = hardware concurrency). Indices are handed out dynamically (atomic
/// counter), so the mapping of index to thread is nondeterministic — the body
/// must write only to per-index state (e.g. slot i of a results vector) for
/// the overall result to be independent of the thread count. With threads
/// resolving to 1, or count <= 1, everything runs inline on the caller's
/// thread.
///
/// Exceptions thrown by the body are captured; the first one (lowest index)
/// is rethrown on the caller's thread after all workers have joined.
void parallel_for(int count, int threads, const std::function<void(int)>& body);

}  // namespace giph::util
