#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace giph::util {

/// FNV-1a 64-bit checksum; stable across platforms, used by the checked-file
/// framing below to detect torn or corrupted writes.
std::uint64_t fnv1a64(const void* data, std::size_t size) noexcept;

/// Wraps `payload` in a length + checksum frame and writes it to `path`
/// crash-safely: the frame goes to `path.tmp` first and is renamed into place
/// (atomic on POSIX), so a crash mid-write never leaves a torn file under the
/// final name. The frame is plain text:
///
///   giph-checked v1
///   <kind> <payload-bytes> <fnv1a64-hex>
///   <payload>
///
/// Throws std::runtime_error on I/O failure.
void write_checked_file(const std::string& path, const std::string& kind,
                        const std::string& payload);

/// The frame write_checked_file would put on disk, as a string (tests and
/// fuzzers that mutate frames in memory).
std::string wrap_checked(const std::string& kind, const std::string& payload);

/// Reads a file written by write_checked_file and returns the payload after
/// validating kind, length, and checksum; a truncated, padded, or corrupted
/// frame throws std::runtime_error naming the failure (never returns garbage).
/// A file without the "giph-checked" header is returned as-is: pre-framing
/// files stay loadable.
std::string read_checked_file(const std::string& path, const std::string& kind);

/// Frame validation on an in-memory buffer (the core of read_checked_file,
/// exposed for loaders that already hold the bytes). Returns the payload or
/// throws; `where` names the source in error messages.
std::string unwrap_checked(const std::string& contents, const std::string& kind,
                           const std::string& where);

}  // namespace giph::util
