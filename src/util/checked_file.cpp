#include "util/checked_file.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace giph::util {

std::uint64_t fnv1a64(const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

constexpr const char* kMagic = "giph-checked";

std::string hex64(std::uint64_t x) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(x));
  return buf;
}

}  // namespace

std::string wrap_checked(const std::string& kind, const std::string& payload) {
  std::ostringstream out;
  out << kMagic << " v1\n"
      << kind << " " << payload.size() << " "
      << hex64(fnv1a64(payload.data(), payload.size())) << "\n"
      << payload;
  return out.str();
}

void write_checked_file(const std::string& path, const std::string& kind,
                        const std::string& payload) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) throw std::runtime_error("checked-file: cannot open for write: " + tmp);
    out << wrap_checked(kind, payload);
    if (!out) throw std::runtime_error("checked-file: write failed: " + tmp);
  }
  std::filesystem::rename(tmp, path);  // atomic on POSIX: old file stays valid
}

std::string unwrap_checked(const std::string& contents, const std::string& kind,
                           const std::string& where) {
  std::istringstream in(contents);
  std::string magic, version;
  in >> magic >> version;
  if (magic != kMagic) return contents;  // legacy unframed file
  if (version != "v1") {
    throw std::runtime_error("checked-file: " + where + ": unknown frame version '" +
                             version + "'");
  }
  std::string file_kind, checksum_hex;
  std::uint64_t length = 0;
  in >> file_kind >> length >> checksum_hex;
  if (!in) {
    throw std::runtime_error("checked-file: " + where + ": malformed frame header");
  }
  if (file_kind != kind) {
    throw std::runtime_error("checked-file: " + where + ": kind mismatch (file holds '" +
                             file_kind + "', expected '" + kind + "')");
  }
  // The payload starts right after the header's newline.
  in.get();  // consume '\n'
  const auto offset = static_cast<std::size_t>(in.tellg());
  if (contents.size() < offset ||
      contents.size() - offset != static_cast<std::size_t>(length)) {
    throw std::runtime_error(
        "checked-file: " + where + ": truncated or padded payload (frame declares " +
        std::to_string(length) + " bytes, file holds " +
        std::to_string(contents.size() < offset ? 0 : contents.size() - offset) +
        ") — likely a torn write; restore from the last good copy");
  }
  const std::string payload = contents.substr(offset);
  const std::string actual = hex64(fnv1a64(payload.data(), payload.size()));
  if (actual != checksum_hex) {
    throw std::runtime_error("checked-file: " + where +
                             ": checksum mismatch (payload is corrupt)");
  }
  return payload;
}

std::string read_checked_file(const std::string& path, const std::string& kind) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checked-file: cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw std::runtime_error("checked-file: read failed: " + path);
  return unwrap_checked(buf.str(), kind, path);
}

}  // namespace giph::util
