#include "util/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace giph::util {

int resolve_threads(int threads) {
  if (threads >= 1) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_for(int count, int threads, const std::function<void(int)>& body) {
  if (count <= 0) return;
  const int workers = std::min(resolve_threads(threads), count);
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<int> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  int first_error_index = -1;

  auto work = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error_index < 0 || i < first_error_index) {
          first_error = std::current_exception();
          first_error_index = i;
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (int t = 1; t < workers; ++t) pool.emplace_back(work);
  work();  // the caller's thread participates
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace giph::util
