#include "util/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace giph::util {

int resolve_threads(int threads) {
  if (threads >= 1) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_for(int count, int threads, const std::function<void(int)>& body) {
  if (count <= 0) return;
  const int workers = std::min(resolve_threads(threads), count);
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<int> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  int first_error_index = -1;

  auto work = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error_index < 0 || i < first_error_index) {
          first_error = std::current_exception();
          first_error_index = i;
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (int t = 1; t < workers; ++t) pool.emplace_back(work);
  work();  // the caller's thread participates
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

WorkerPool::WorkerPool(int threads) : threads_(resolve_threads(threads)) {
  workers_.reserve(threads_ - 1);
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

/// Hands out indices of the current run to `worker` until none remain, then
/// retires the worker from the run. Called with mu_ held; releases it around
/// each body invocation.
void WorkerPool::drain(int worker) {
  for (;;) {
    if (next_ >= count_) break;
    const int i = next_++;
    mu_.unlock();
    std::exception_ptr err;
    try {
      (*body_)(i, worker);
    } catch (...) {
      err = std::current_exception();
    }
    mu_.lock();
    if (err && (first_error_index_ < 0 || i < first_error_index_)) {
      first_error_ = err;
      first_error_index_ = i;
    }
  }
  if (--active_ == 0) done_cv_.notify_all();
}

void WorkerPool::worker_loop(int worker) {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    start_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    drain(worker);
  }
}

void WorkerPool::run(int count, const std::function<void(int, int)>& body) {
  std::unique_lock<std::mutex> lock(mu_);
  if (body_ != nullptr) throw std::logic_error("WorkerPool::run: reentrant call");
  count_ = count;
  body_ = &body;
  next_ = 0;
  active_ = threads_;
  first_error_ = nullptr;
  first_error_index_ = -1;
  ++generation_;
  start_cv_.notify_all();
  drain(0);  // the caller's thread participates as worker 0
  done_cv_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace giph::util
