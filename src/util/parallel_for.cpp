#include "util/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace giph::util {

int resolve_threads(int threads) {
  if (threads >= 1) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_for(int count, int threads, const std::function<void(int)>& body) {
  if (count <= 0) return;
  const int workers = std::min(resolve_threads(threads), count);
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<int> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  int first_error_index = -1;

  auto work = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error_index < 0 || i < first_error_index) {
          first_error = std::current_exception();
          first_error_index = i;
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (int t = 1; t < workers; ++t) pool.emplace_back(work);
  work();  // the caller's thread participates
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

WorkerPool::WorkerPool(int threads) : threads_(resolve_threads(threads)) {
  workers_.reserve(threads_ - 1);
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  try {
    stop_and_drain();
  } catch (...) {
    // A queued task threw and nobody collected it; destruction must not.
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

/// Hands out indices of the current run to `worker` until none remain, then
/// retires the worker from the run. Called with mu_ held; releases it around
/// each body invocation.
void WorkerPool::drain(int worker) {
  for (;;) {
    if (next_ >= count_) break;
    const int i = next_++;
    mu_.unlock();
    std::exception_ptr err;
    try {
      (*body_)(i, worker);
    } catch (...) {
      err = std::current_exception();
    }
    mu_.lock();
    if (err && (first_error_index_ < 0 || i < first_error_index_)) {
      first_error_ = err;
      first_error_index_ = i;
    }
  }
  if (--active_ == 0) done_cv_.notify_all();
}

/// Pops and executes one queued task. Called with mu_ held; releases it
/// around the task body. Exceptions are captured into task_error_ (first
/// wins) so one throwing task never wedges the pool or skips later tasks.
void WorkerPool::run_one_queued(int worker, std::unique_lock<std::mutex>& lock) {
  std::function<void(int)> task = std::move(queue_.front());
  queue_.pop_front();
  ++tasks_in_flight_;
  lock.unlock();
  std::exception_ptr err;
  try {
    task(worker);
  } catch (...) {
    err = std::current_exception();
  }
  lock.lock();
  if (err && !task_error_) task_error_ = err;
  --tasks_in_flight_;
  if (queue_.empty() && tasks_in_flight_ == 0) idle_cv_.notify_all();
}

void WorkerPool::worker_loop(int worker) {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    start_cv_.wait(lock,
                   [&] { return shutdown_ || generation_ != seen || !queue_.empty(); });
    if (generation_ != seen) {
      seen = generation_;
      drain(worker);
      continue;
    }
    if (!queue_.empty()) {
      run_one_queued(worker, lock);
      continue;
    }
    if (shutdown_) return;
  }
}

bool WorkerPool::try_submit(std::function<void(int worker)> task) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!accepting_ || shutdown_) return false;
  if (threads_ == 1) {
    // No background workers: run inline as worker 0 (same capture semantics
    // as the background path, so callers observe one behavior).
    queue_.push_back(std::move(task));
    run_one_queued(0, lock);
    return true;
  }
  queue_.push_back(std::move(task));
  start_cv_.notify_one();
  return true;
}

void WorkerPool::submit(std::function<void(int worker)> task) {
  if (!try_submit(std::move(task))) {
    throw std::runtime_error("WorkerPool::submit: pool is stopped");
  }
}

void WorkerPool::stop_and_drain() {
  std::unique_lock<std::mutex> lock(mu_);
  accepting_ = false;
  // Wake the workers: with admission closed they must finish what is queued,
  // not wait for more.
  start_cv_.notify_all();
  idle_cv_.wait(lock, [&] { return queue_.empty() && tasks_in_flight_ == 0; });
  if (task_error_) {
    std::exception_ptr err = task_error_;
    task_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

int WorkerPool::pending_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size()) + tasks_in_flight_;
}

void WorkerPool::run(int count, const std::function<void(int, int)>& body) {
  std::unique_lock<std::mutex> lock(mu_);
  if (body_ != nullptr) throw std::logic_error("WorkerPool::run: reentrant call");
  count_ = count;
  body_ = &body;
  next_ = 0;
  active_ = threads_;
  first_error_ = nullptr;
  first_error_index_ = -1;
  ++generation_;
  start_cv_.notify_all();
  drain(0);  // the caller's thread participates as worker 0
  done_cv_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace giph::util
