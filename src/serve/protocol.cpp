#include "serve/protocol.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <sstream>

namespace giph::serve {
namespace {

constexpr const char* kReqKind = "giph-request";
constexpr const char* kRespKind = "giph-response";

/// Serving budgets stay bounded no matter what a client asks for.
constexpr long kMaxRequestSteps = 10'000'000;

void expect_key(LineReader& r, const char* kind, const char* key) {
  const int at = r.line();
  const std::string tok = r.token(kind, key);
  if (tok != key) {
    throw ParseError(kind, at,
                     std::string("expected field '") + key + "', got '" + tok + "'");
  }
}

bool read_flag(LineReader& r, const char* kind, const char* key) {
  expect_key(r, kind, key);
  const int at = r.line();
  const long x = r.read_int(kind, key);
  if (x != 0 && x != 1) {
    throw ParseError(kind, at,
                     std::string(key) + " must be 0 or 1, got " + std::to_string(x));
  }
  return x == 1;
}

void expect_end(LineReader& r, const char* kind) {
  const int at = r.line();
  const std::string tok = r.token(kind, "'end' terminator");
  if (tok != "end") {
    throw ParseError(kind, at, "expected 'end' terminator, got '" + tok + "'");
  }
}

std::string one_line(const std::string& s) {
  std::string out = s.empty() ? "-" : s;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace

const char* to_string(ResponseStatus s) noexcept {
  switch (s) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kShed: return "shed";
    case ResponseStatus::kError: return "error";
  }
  return "error";
}

const char* to_string(ServeMode m) noexcept {
  switch (m) {
    case ServeMode::kPolicy: return "policy";
    case ServeMode::kHeft: return "heft";
    case ServeMode::kNone: return "none";
  }
  return "none";
}

void write_request(std::ostream& out, const PlacementRequest& req) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << kReqKind << " v1\n";
  out << "id " << one_line(req.id) << "\n";
  out << "deadline_ms " << req.deadline_ms << "\n";
  out << "steps " << req.steps << "\n";
  out << "seed " << req.seed << "\n";
  write_task_graph(out, req.graph);
  write_device_network(out, req.network);
  out << "initial " << (req.initial.has_value() ? 1 : 0) << "\n";
  if (req.initial.has_value()) write_placement(out, *req.initial);
  out << "end\n";
}

bool read_request(LineReader& r, PlacementRequest& req, bool header_consumed) {
  const char* kind = kReqKind;
  if (!header_consumed) {
    if (r.at_end()) return false;
    const int at = r.line();
    const std::string magic = r.token(kind, "header");
    const std::string version = r.token(kind, "header version");
    if (magic != kReqKind || version != "v1") {
      throw ParseError(kind, at,
                       "expected 'giph-request v1' header, got '" + magic + " " +
                           version + "'");
    }
  }
  req = PlacementRequest{};

  expect_key(r, kind, "id");
  req.id = r.token(kind, "id value");

  expect_key(r, kind, "deadline_ms");
  {
    const int at = r.line();
    req.deadline_ms = r.read_double(kind, "deadline_ms");
    if (!std::isfinite(req.deadline_ms) || req.deadline_ms < 0.0) {
      throw ParseError(kind, at, "deadline_ms must be finite and >= 0, got " +
                                     std::to_string(req.deadline_ms));
    }
  }

  expect_key(r, kind, "steps");
  {
    const int at = r.line();
    const long steps = r.read_int(kind, "steps");
    if (steps < 0 || steps > kMaxRequestSteps) {
      throw ParseError(kind, at,
                       "steps must be in [0, " + std::to_string(kMaxRequestSteps) +
                           "], got " + std::to_string(steps));
    }
    req.steps = static_cast<int>(steps);
  }

  expect_key(r, kind, "seed");
  {
    const int at = r.line();
    const std::string tok = r.token(kind, "seed");
    errno = 0;
    char* end = nullptr;
    req.seed = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || errno == ERANGE) {
      throw ParseError(kind, at, "seed is not an unsigned integer: '" + tok + "'");
    }
  }

  req.graph = read_task_graph(r);
  req.network = read_device_network(r);

  const bool has_initial = read_flag(r, kind, "initial");
  if (has_initial) {
    const int at = r.line();
    Placement p = read_placement(r);
    if (p.num_tasks() != req.graph.num_tasks()) {
      throw ParseError(kind, at,
                       "initial placement has " + std::to_string(p.num_tasks()) +
                           " tasks but the task graph has " +
                           std::to_string(req.graph.num_tasks()));
    }
    for (int v = 0; v < p.num_tasks(); ++v) {
      if (p.device_of(v) < 0 || p.device_of(v) >= req.network.num_devices()) {
        throw ParseError(kind, at,
                         "initial placement maps task " + std::to_string(v) +
                             " to device " + std::to_string(p.device_of(v)) +
                             ", network has " +
                             std::to_string(req.network.num_devices()) + " devices");
      }
    }
    req.initial = std::move(p);
  }

  expect_end(r, kind);
  return true;
}

bool read_request(std::istream& in, PlacementRequest& req) {
  LineReader r(in);
  return read_request(r, req);
}

void write_response(std::ostream& out, const PlacementResponse& resp) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << kRespKind << " v1\n";
  out << "id " << one_line(resp.id) << "\n";
  out << "status " << to_string(resp.status) << "\n";
  out << "mode " << to_string(resp.mode) << "\n";
  out << "deadline_exceeded " << (resp.deadline_exceeded ? 1 : 0) << "\n";
  out << "makespan " << resp.makespan << "\n";
  out << "steps " << resp.steps << "\n";
  out << "queue_ms " << resp.queue_ms << "\n";
  out << "search_ms " << resp.search_ms << "\n";
  out << "error " << one_line(resp.error) << "\n";
  out << "placement " << (resp.placement.has_value() ? 1 : 0) << "\n";
  if (resp.placement.has_value()) write_placement(out, *resp.placement);
  out << "end\n";
}

bool read_response(LineReader& r, PlacementResponse& resp) {
  const char* kind = kRespKind;
  if (r.at_end()) return false;
  {
    const int at = r.line();
    const std::string magic = r.token(kind, "header");
    const std::string version = r.token(kind, "header version");
    if (magic != kRespKind || version != "v1") {
      throw ParseError(kind, at,
                       "expected 'giph-response v1' header, got '" + magic + " " +
                           version + "'");
    }
  }
  resp = PlacementResponse{};

  expect_key(r, kind, "id");
  resp.id = r.token(kind, "id value");

  expect_key(r, kind, "status");
  {
    const int at = r.line();
    const std::string s = r.token(kind, "status");
    if (s == "ok") {
      resp.status = ResponseStatus::kOk;
    } else if (s == "shed") {
      resp.status = ResponseStatus::kShed;
    } else if (s == "error") {
      resp.status = ResponseStatus::kError;
    } else {
      throw ParseError(kind, at, "unknown status '" + s + "'");
    }
  }

  expect_key(r, kind, "mode");
  {
    const int at = r.line();
    const std::string s = r.token(kind, "mode");
    if (s == "policy") {
      resp.mode = ServeMode::kPolicy;
    } else if (s == "heft") {
      resp.mode = ServeMode::kHeft;
    } else if (s == "none") {
      resp.mode = ServeMode::kNone;
    } else {
      throw ParseError(kind, at, "unknown mode '" + s + "'");
    }
  }

  resp.deadline_exceeded = read_flag(r, kind, "deadline_exceeded");

  expect_key(r, kind, "makespan");
  {
    const int at = r.line();
    resp.makespan = r.read_double(kind, "makespan");
    if (!std::isfinite(resp.makespan) || resp.makespan < 0.0) {
      throw ParseError(kind, at, "makespan must be finite and >= 0");
    }
  }

  expect_key(r, kind, "steps");
  resp.steps = static_cast<int>(r.read_int(kind, "steps"));
  expect_key(r, kind, "queue_ms");
  resp.queue_ms = r.read_double(kind, "queue_ms");
  expect_key(r, kind, "search_ms");
  resp.search_ms = r.read_double(kind, "search_ms");

  expect_key(r, kind, "error");
  {
    const std::string e = r.rest_of_line();
    resp.error = (e == "-") ? std::string{} : e;
  }

  if (read_flag(r, kind, "placement")) resp.placement = read_placement(r);
  expect_end(r, kind);
  return true;
}

bool read_response(std::istream& in, PlacementResponse& resp) {
  LineReader r(in);
  return read_response(r, resp);
}

}  // namespace giph::serve
