#pragma once

#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "serve/server.hpp"

namespace giph::serve {

/// Server-side fault-injection harness for tests and benchmarks: binds into
/// PlacementServer's ServeHooks seam and injects faults keyed on request id,
/// deterministically (no timers, no sleeps — stalls are explicit barriers).
///
/// Supported faults:
///   - stalled worker: hold_request(id) blocks the worker serving `id` inside
///     the serving path until release_all(); awaiting() reports how many
///     workers are parked, so a test can fill the queue behind a known stall
///     and observe shedding with an exact, machine-independent shed count.
///   - poison request: poison_request(id, what) throws std::runtime_error at
///     request entry; the server must convert it into a status=error response
///     and keep serving.
///
/// Snapshot-corruption faults need no hook: corrupt the file with
/// inject_file_fault and drive SnapshotStore::load directly (a failed load
/// keeps the last-good snapshot resident).
class FaultInjector {
 public:
  /// ServeHooks bound to this injector; install into the PlacementServer
  /// constructor. The injector must outlive the server.
  ServeHooks hooks();

  /// Future requests with this id block inside the serving path.
  void hold_request(const std::string& id);

  /// Future requests with this id fail at entry with `what`.
  void poison_request(const std::string& id, std::string what);

  /// Unblocks every held request and clears the hold set.
  void release_all();

  /// Workers currently parked on a hold.
  int awaiting() const;

  /// Blocks until at least `n` workers are parked on holds (barrier for
  /// tests that must fill the queue behind a known stall).
  void wait_for_awaiting(int n);

 private:
  void on_start(int worker, const PlacementRequest& req);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::set<std::string> holds_;
  std::map<std::string, std::string> poisons_;
  int awaiting_ = 0;
};

/// File-corruption primitives for torn-write and checksum tests:
///   kTruncate  — drop everything from byte `at` on (a torn write)
///   kFlipByte  — XOR the byte at `at` with 0x01 (silent corruption)
/// Throws std::runtime_error when the file cannot be read/written or `at` is
/// out of range.
enum class FileFault { kTruncate, kFlipByte };
void inject_file_fault(const std::string& path, FileFault fault, std::size_t at);

}  // namespace giph::serve
