#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "core/search_env.hpp"
#include "core/search_policy.hpp"
#include "serve/protocol.hpp"
#include "serve/snapshot.hpp"
#include "sim/latency_model.hpp"
#include "util/parallel_for.hpp"

namespace giph::serve {

/// Serving configuration. The defaults favor predictable latency: greedy
/// action selection (no sampling variance across identical requests) and a
/// bounded admission queue that sheds instead of building unbounded backlog.
struct ServerOptions {
  int workers = 1;         ///< worker threads (>= 1)
  int queue_capacity = 64; ///< admission bound; at capacity, submits shed
  /// Default search budget when a request leaves steps = 0: factor * |V|
  /// (the paper's episode length), capped by max_steps.
  int default_steps_factor = 2;
  int max_steps = 4096;  ///< hard per-request cap, client-requested or not
  bool greedy = true;    ///< greedy decode (deterministic given a snapshot)
};

/// Server-side fault-injection seam. Every hook defaults to null (no-op);
/// tests and the fault harness install callbacks to stall a worker inside the
/// serving path, poison a request mid-flight (throw), or trigger a snapshot
/// swap at the worst possible moment. Hooks run on the worker thread, after
/// admission and before validation.
struct ServeHooks {
  std::function<void(int worker, const PlacementRequest& req)> on_request_start;
};

/// Monotonic serving counters (atomics; readable while serving).
struct ServerStats {
  std::uint64_t received = 0;   ///< requests entering handle()
  std::uint64_t ok = 0;         ///< status ok responses
  std::uint64_t shed = 0;       ///< admission rejections
  std::uint64_t errors = 0;     ///< status error responses
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t served_policy = 0;  ///< ok responses in policy mode
  std::uint64_t served_heft = 0;    ///< ok responses in degraded heft mode
};

/// Delivery callback for asynchronous submits; invoked exactly once per
/// accepted or shed request, on the worker thread (shed: on the submitting
/// thread, before submit() returns).
using ResponseSink = std::function<void(const PlacementResponse&)>;

/// The placement-as-a-service engine: a sharded pool of workers, each owning
/// a private search arena (PlacementSearchEnv with its SimWorkspace, a policy
/// clone, an RNG), serving placement requests against the resident policy
/// snapshot with per-request deadlines, bounded admission, and degraded-mode
/// fallbacks.
///
/// Robustness contract:
///   - handle() never throws: malformed or infeasible instances produce a
///     status=error response with an actionable message, and any unexpected
///     exception from the serving path is converted to one too.
///   - A request races its deadline, not the queue: the deadline clock
///     starts at admission, so queue wait counts against it, and the search
///     is anytime — when the deadline fires mid-search the best-so-far
///     placement is returned with deadline_exceeded = 1 (status stays ok).
///   - No resident snapshot => degraded mode: requests are answered with the
///     HEFT baseline, mode=heft, rather than refused. Snapshot hot-swaps
///     are picked up per request; a worker's cached policy clone is rebuilt
///     only when the snapshot version changed.
///   - At queue capacity, submit() sheds synchronously (status=shed) instead
///     of queueing: explicit backpressure, bounded memory.
///
/// Steady-state allocation: each worker's environment is reinit()ed per
/// request, reusing its simulation workspace, schedule, and index buffers;
/// the policy clone persists across requests of the same snapshot version.
class PlacementServer {
 public:
  /// `store` is the snapshot slot the server serves from (hot-swappable by
  /// another thread); it must outlive the server.
  PlacementServer(const ServerOptions& opt, SnapshotStore& store,
                  ServeHooks hooks = {});
  ~PlacementServer();

  PlacementServer(const PlacementServer&) = delete;
  PlacementServer& operator=(const PlacementServer&) = delete;

  /// Serves one request synchronously on the calling thread using worker
  /// slot `worker`'s arena (tests and single-threaded callers). The deadline
  /// clock starts now. Never throws.
  PlacementResponse handle(const PlacementRequest& req, int worker = 0);

  /// Enqueues a request for asynchronous serving; `sink` receives the
  /// response exactly once. Returns false when the request was not admitted —
  /// the queue is at capacity (status=shed) or the server is draining
  /// (status=error) — in which case the rejection response has already been
  /// delivered through `sink` on this thread.
  bool submit(PlacementRequest req, ResponseSink sink);

  /// Stops admission and blocks until every accepted request has been
  /// answered. Idempotent; also run by the destructor.
  void stop_and_drain();

  ServerStats stats() const;
  const ServerOptions& options() const noexcept { return opt_; }
  int workers() const noexcept { return pool_.threads(); }

 private:
  struct WorkerArena {
    std::unique_ptr<PlacementSearchEnv> env;  ///< created on first request
    std::unique_ptr<SearchPolicy> policy;     ///< clone of the snapshot agent
    std::uint64_t policy_version = 0;         ///< snapshot version of `policy`
  };

  PlacementResponse handle_at(const PlacementRequest& req, int worker,
                              std::chrono::steady_clock::time_point admitted);
  PlacementResponse serve_request(const PlacementRequest& req, int worker,
                                  std::chrono::steady_clock::time_point admitted);
  void count_response(const PlacementResponse& resp);

  ServerOptions opt_;
  SnapshotStore& store_;
  ServeHooks hooks_;
  DefaultLatencyModel lat_;
  util::WorkerPool pool_;
  std::vector<WorkerArena> arenas_;  ///< indexed by worker slot

  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> served_policy_{0};
  std::atomic<std::uint64_t> served_heft_{0};
};

/// Runs the daemon loop over a request stream: reads giph-request frames from
/// `in`, serves them through `server`, and writes giph-response frames to
/// `out` (responses are serialized under a lock and flushed per response, so
/// they may interleave across requests but never within one). A malformed
/// request produces a status=error response (id "-") carrying the parse
/// error's line/field context, after which the reader resynchronizes on the
/// next "giph-request v1" header — one poison request never takes down the
/// stream. Returns the number of well-formed requests served; drains the
/// server before returning.
std::uint64_t serve_stream(std::istream& in, std::ostream& out,
                           PlacementServer& server);

}  // namespace giph::serve
