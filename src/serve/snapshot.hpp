#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/giph_agent.hpp"

namespace giph::serve {

/// An immutable trained-policy snapshot held resident by the serving daemon:
/// the agent architecture (GiPHOptions) plus its parameter values. Workers
/// never touch the master agent's mutable per-episode state — each clones a
/// private policy (GiPHAgent::clone_for_rollout) keyed on `version`.
struct PolicySnapshot {
  GiPHOptions options;
  std::shared_ptr<const GiPHAgent> agent;
  std::uint64_t version = 0;  ///< assigned by SnapshotStore::install
  std::string source;         ///< path the snapshot was loaded from ("" = in-memory)
};

/// Writes architecture + parameters as one checksummed file
/// (util::write_checked_file: length + FNV-1a frame, write-to-temp + atomic
/// rename). Payload:
///
///   giph-policy-snapshot v1
///   gnn <int> embed_dim <int> k_steps <int> use_gpnet <0|1>
///   include_potential <0|1> mask_noop <0|1> mask_repeat <0|1>
///   use_critic <0|1> seed <uint64>
///   giph-params v1 ...
void save_policy_snapshot(const std::string& path, const GiPHAgent& agent);

/// Loads a snapshot file; throws std::runtime_error on any corruption — a
/// missing file, a torn/truncated frame, a checksum mismatch, an unknown
/// architecture field, or a parameter-shape mismatch. Never returns a
/// half-initialized policy.
std::shared_ptr<PolicySnapshot> load_policy_snapshot(const std::string& path);

/// The daemon's resident snapshot slot with atomic hot-swap semantics:
/// install/current are mutex-guarded shared_ptr swaps, so workers either see
/// the complete old snapshot or the complete new one — never a torn state.
/// A failed load (corrupt or missing file) leaves the last-good snapshot
/// resident and is reported to the caller instead of thrown into the serving
/// path.
class SnapshotStore {
 public:
  /// Attempts to load `path` and install it. On failure returns false, writes
  /// the reason into *error (when non-null), and keeps the current snapshot.
  bool load(const std::string& path, std::string* error = nullptr);

  /// Installs an in-memory snapshot (takes ownership; assigns the version).
  void install(std::shared_ptr<PolicySnapshot> snap);

  /// The resident snapshot, or null when none was ever loaded (degraded
  /// HEFT-only serving).
  std::shared_ptr<const PolicySnapshot> current() const;

  std::uint64_t swaps() const;         ///< successful installs
  std::uint64_t failed_loads() const;  ///< rejected loads (kept last-good)

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const PolicySnapshot> cur_;
  std::uint64_t versions_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace giph::serve
