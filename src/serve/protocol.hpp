#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "graph/serialization.hpp"

namespace giph::serve {

/// One placement request: a problem instance plus serving controls. Wire
/// format (plain text, strict field order, versioned):
///
///   giph-request v1
///   id <token>
///   deadline_ms <double>      0 = no deadline
///   steps <int>               0 = server default (2|V|, capped)
///   seed <uint64>             action-sampling seed (determinism handle)
///   task-graph v1 ...
///   device-network v1 ...
///   initial 0|1
///   [placement v1 ...]        warm-start placement when initial = 1
///   end
struct PlacementRequest {
  std::string id = "-";
  double deadline_ms = 0.0;
  int steps = 0;
  std::uint64_t seed = 0;
  TaskGraph graph;
  DeviceNetwork network;
  std::optional<Placement> initial;
};

/// Response disposition. kOk covers deadline-expired requests too — they
/// still carry a best-so-far schedule, flagged via deadline_exceeded; kShed
/// is the admission queue's explicit backpressure signal (no schedule); and
/// kError reports a rejected request (parse failure, infeasible instance)
/// with an actionable message.
enum class ResponseStatus { kOk, kShed, kError };

/// Which engine produced the schedule: the resident learned policy, or the
/// HEFT baseline (degraded mode: no loadable snapshot, or a pre-expired
/// deadline that left no search budget).
enum class ServeMode { kPolicy, kHeft, kNone };

/// One placement response. Wire format mirrors the request:
///
///   giph-response v1
///   id <token>
///   status ok|shed|error
///   mode policy|heft|none
///   deadline_exceeded 0|1
///   makespan <double>
///   steps <int>
///   queue_ms <double>
///   search_ms <double>
///   error <single line or ->
///   placement 0|1
///   [placement v1 ...]
///   end
struct PlacementResponse {
  std::string id = "-";
  ResponseStatus status = ResponseStatus::kOk;
  ServeMode mode = ServeMode::kNone;
  bool deadline_exceeded = false;
  double makespan = 0.0;
  int steps = 0;        ///< search steps actually taken
  double queue_ms = 0.0;
  double search_ms = 0.0;
  std::string error;
  std::optional<Placement> placement;
};

const char* to_string(ResponseStatus s) noexcept;
const char* to_string(ServeMode m) noexcept;

void write_request(std::ostream& out, const PlacementRequest& req);

/// Reads one request. Returns false on clean end-of-stream (no bytes of a
/// request consumed); throws ParseError with line/field context on malformed
/// input. With `header_consumed` the caller already matched the
/// "giph-request v1" header (stream resynchronization after a poison
/// request). Structural cross-checks (initial-placement size vs task count,
/// device ids in range) are enforced here; hardware feasibility is the
/// server's job, reported as an error *response* rather than a parse error.
bool read_request(LineReader& r, PlacementRequest& req, bool header_consumed = false);
bool read_request(std::istream& in, PlacementRequest& req);

void write_response(std::ostream& out, const PlacementResponse& resp);

/// Reads one response (clients, tests). Same conventions as read_request.
bool read_response(LineReader& r, PlacementResponse& resp);
bool read_response(std::istream& in, PlacementResponse& resp);

}  // namespace giph::serve
