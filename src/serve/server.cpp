#include "serve/server.hpp"

#include <chrono>
#include <istream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "core/reinforce.hpp"
#include "heft/heft.hpp"
#include "sim/metrics.hpp"

namespace giph::serve {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

PlacementServer::PlacementServer(const ServerOptions& opt, SnapshotStore& store,
                                 ServeHooks hooks)
    : opt_(opt),
      store_(store),
      hooks_(std::move(hooks)),
      pool_(opt.workers < 1 ? 1 : opt.workers),
      arenas_(static_cast<std::size_t>(pool_.threads())) {
  if (opt_.workers < 1) opt_.workers = 1;
  if (opt_.queue_capacity < 1) opt_.queue_capacity = 1;
  if (opt_.default_steps_factor < 0) opt_.default_steps_factor = 0;
  if (opt_.max_steps < 0) opt_.max_steps = 0;
}

PlacementServer::~PlacementServer() {
  try {
    stop_and_drain();
  } catch (...) {
    // A queued request's exception already became an error response; nothing
    // escapes the serving path, but stay defensive in the destructor.
  }
}

PlacementResponse PlacementServer::handle(const PlacementRequest& req, int worker) {
  return handle_at(req, worker, Clock::now());
}

PlacementResponse PlacementServer::handle_at(const PlacementRequest& req, int worker,
                                             Clock::time_point admitted) {
  received_.fetch_add(1, std::memory_order_relaxed);
  PlacementResponse resp;
  try {
    resp = serve_request(req, worker, admitted);
  } catch (const std::exception& e) {
    // The daemon never dies on a request: any exception escaping the serving
    // path (infeasible instance, fault-injection poison, internal error)
    // becomes an actionable error response.
    resp = PlacementResponse{};
    resp.id = req.id;
    resp.status = ResponseStatus::kError;
    resp.mode = ServeMode::kNone;
    resp.error = e.what();
    resp.queue_ms = ms_since(admitted, Clock::now());
  }
  count_response(resp);
  return resp;
}

PlacementResponse PlacementServer::serve_request(const PlacementRequest& req,
                                                 int worker,
                                                 Clock::time_point admitted) {
  PlacementResponse resp;
  resp.id = req.id;
  const Clock::time_point start = Clock::now();
  resp.queue_ms = ms_since(admitted, start);

  if (hooks_.on_request_start) hooks_.on_request_start(worker, req);

  if (req.graph.num_tasks() == 0) {
    resp.status = ResponseStatus::kOk;
    resp.mode = ServeMode::kNone;
    resp.placement = Placement(0);
    return resp;
  }

  // Feasibility gate: a task with no feasible device is a client error, not a
  // crash (feasible_sets throws with the offending task in the message).
  (void)feasible_sets(req.graph, req.network);

  // Warm start: the client's placement when present and feasible, else HEFT.
  // An infeasible warm start is an error — silently substituting would hide a
  // client bug behind a plausible answer.
  Placement initial;
  ServeMode initial_mode = ServeMode::kHeft;
  if (req.initial.has_value()) {
    if (!is_feasible(req.graph, req.network, *req.initial)) {
      throw std::runtime_error(
          "initial placement violates the network's hardware constraints");
    }
    initial = *req.initial;
    initial_mode = ServeMode::kNone;
  } else {
    initial = heft_schedule(req.graph, req.network, lat_).placement;
  }

  // Snapshot resolution: per request, so a hot-swap lands on the very next
  // request; the worker's policy clone is rebuilt only on a version change.
  const std::shared_ptr<const PolicySnapshot> snap = store_.current();
  WorkerArena& arena = arenas_.at(static_cast<std::size_t>(worker));
  if (snap != nullptr && arena.policy_version != snap->version) {
    arena.policy = snap->agent->clone_for_rollout();
    arena.policy_version = snap->version;
  }
  const bool have_policy = snap != nullptr && arena.policy != nullptr;

  int steps = req.steps > 0 ? req.steps
                            : opt_.default_steps_factor * req.graph.num_tasks();
  if (steps > opt_.max_steps) steps = opt_.max_steps;
  if (!have_policy) steps = 0;  // degraded mode: HEFT answer, no search

  if (arena.env == nullptr) {
    arena.env = std::make_unique<PlacementSearchEnv>(
        req.graph, req.network, lat_, makespan_objective(lat_), initial);
  } else {
    arena.env->reinit(req.graph, req.network, makespan_objective(lat_), initial);
  }
  PlacementSearchEnv& env = *arena.env;

  const bool has_deadline = req.deadline_ms > 0.0;
  const Clock::time_point deadline =
      admitted + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(req.deadline_ms));

  if (has_deadline && Clock::now() >= deadline) {
    // Pre-expired before any search budget was left: answer with the warm
    // start rather than nothing (degraded, explicit, still a valid schedule).
    resp.status = ResponseStatus::kOk;
    resp.mode = initial_mode;
    resp.deadline_exceeded = true;
    resp.makespan = env.objective();
    resp.placement = env.placement();
    return resp;
  }

  resp.mode = have_policy ? ServeMode::kPolicy : ServeMode::kHeft;
  if (steps > 0) {
    std::mt19937_64 rng(req.seed);
    bool stopped = false;
    const SearchStop stop =
        has_deadline ? SearchStop([&] { return Clock::now() >= deadline; })
                     : SearchStop();
    const Clock::time_point t0 = Clock::now();
    const SearchTrace trace =
        run_search_anytime(*arena.policy, env, steps, rng, opt_.greedy, stop, &stopped);
    resp.search_ms = ms_since(t0, Clock::now());
    resp.deadline_exceeded = stopped;
    resp.steps = static_cast<int>(trace.best_so_far.size());
  }
  resp.status = ResponseStatus::kOk;
  resp.makespan = env.best_objective();
  resp.placement = env.best_placement();
  return resp;
}

void PlacementServer::count_response(const PlacementResponse& resp) {
  switch (resp.status) {
    case ResponseStatus::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      if (resp.mode == ServeMode::kPolicy) {
        served_policy_.fetch_add(1, std::memory_order_relaxed);
      } else if (resp.mode == ServeMode::kHeft) {
        served_heft_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case ResponseStatus::kShed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseStatus::kError:
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (resp.deadline_exceeded) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool PlacementServer::submit(PlacementRequest req, ResponseSink sink) {
  const Clock::time_point admitted = Clock::now();
  if (pool_.pending_tasks() >= opt_.queue_capacity) {
    PlacementResponse resp;
    resp.id = req.id;
    resp.status = ResponseStatus::kShed;
    resp.mode = ServeMode::kNone;
    resp.error = "queue at capacity (" + std::to_string(opt_.queue_capacity) +
                 " pending); retry with backoff";
    count_response(resp);
    if (sink) sink(resp);
    return false;
  }
  // The request and sink live in shared context until the response is
  // delivered (the environment's graph/network references point into the
  // request), and remain reachable here for the rejection path.
  struct Ctx {
    PlacementRequest req;
    ResponseSink sink;
  };
  auto ctx = std::make_shared<Ctx>(Ctx{std::move(req), std::move(sink)});
  const bool accepted = pool_.try_submit([this, admitted, ctx](int worker) {
    const PlacementResponse resp = handle_at(ctx->req, worker, admitted);
    if (ctx->sink) ctx->sink(resp);
  });
  if (!accepted) {
    PlacementResponse resp;
    resp.id = ctx->req.id;
    resp.status = ResponseStatus::kError;
    resp.mode = ServeMode::kNone;
    resp.error = "server is draining; not accepting requests";
    count_response(resp);
    if (ctx->sink) ctx->sink(resp);
    return false;
  }
  return true;
}

void PlacementServer::stop_and_drain() { pool_.stop_and_drain(); }

ServerStats PlacementServer::stats() const {
  ServerStats s;
  s.received = received_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.served_policy = served_policy_.load(std::memory_order_relaxed);
  s.served_heft = served_heft_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t serve_stream(std::istream& in, std::ostream& out,
                           PlacementServer& server) {
  std::mutex out_mu;
  const auto sink = [&out, &out_mu](const PlacementResponse& resp) {
    std::lock_guard<std::mutex> lock(out_mu);
    write_response(out, resp);
    out.flush();
  };

  std::uint64_t served = 0;
  LineReader r(in);
  bool header_consumed = false;
  for (;;) {
    PlacementRequest req;
    try {
      if (!read_request(r, req, header_consumed)) break;
    } catch (const ParseError& e) {
      PlacementResponse resp;
      resp.id = "-";
      resp.status = ResponseStatus::kError;
      resp.mode = ServeMode::kNone;
      resp.error = e.what();
      sink(resp);
      // Resynchronize: skip to the next "giph-request v1" header so one
      // poison request cannot take down the stream.
      header_consumed = false;
      while (!r.at_end()) {
        if (r.token("giph-request", "resync") != "giph-request") continue;
        if (r.at_end()) break;
        if (r.token("giph-request", "resync version") == "v1") {
          header_consumed = true;
          break;
        }
      }
      if (!header_consumed) break;
      continue;
    }
    header_consumed = false;
    ++served;
    server.submit(std::move(req), sink);
  }
  server.stop_and_drain();
  return served;
}

}  // namespace giph::serve
