#include "serve/snapshot.hpp"

#include <sstream>
#include <stdexcept>

#include "util/checked_file.hpp"

namespace giph::serve {
namespace {

constexpr const char* kKind = "giph-policy-snapshot";

void expect_field(std::istream& in, const std::string& path, const char* key) {
  std::string tok;
  in >> tok;
  if (!in || tok != key) {
    throw std::runtime_error("snapshot: " + path + ": expected field '" + key +
                             "', got '" + tok + "'");
  }
}

long read_long(std::istream& in, const std::string& path, const char* key) {
  expect_field(in, path, key);
  long x = 0;
  in >> x;
  if (!in) {
    throw std::runtime_error("snapshot: " + path + ": malformed " + std::string(key));
  }
  return x;
}

bool read_bool(std::istream& in, const std::string& path, const char* key) {
  const long x = read_long(in, path, key);
  if (x != 0 && x != 1) {
    throw std::runtime_error("snapshot: " + path + ": " + key + " must be 0 or 1");
  }
  return x == 1;
}

}  // namespace

void save_policy_snapshot(const std::string& path, const GiPHAgent& agent) {
  const GiPHOptions& o = agent.options();
  std::ostringstream out;
  out << kKind << " v1\n";
  out << "gnn " << static_cast<int>(o.gnn) << " embed_dim " << o.embed_dim
      << " k_steps " << o.k_steps << " use_gpnet " << (o.use_gpnet ? 1 : 0)
      << "\ninclude_potential " << (o.include_potential ? 1 : 0) << " mask_noop "
      << (o.mask_noop ? 1 : 0) << " mask_repeat " << (o.mask_repeat ? 1 : 0)
      << "\nuse_critic " << (o.use_critic ? 1 : 0) << " seed " << o.seed << "\n";
  agent.registry().save(out);
  util::write_checked_file(path, kKind, out.str());
}

std::shared_ptr<PolicySnapshot> load_policy_snapshot(const std::string& path) {
  std::istringstream in(util::read_checked_file(path, kKind));
  std::string magic, version;
  in >> magic >> version;
  if (magic != kKind || version != "v1") {
    throw std::runtime_error("snapshot: " + path + ": expected '" +
                             std::string(kKind) + " v1' header");
  }
  GiPHOptions o;
  const long gnn = read_long(in, path, "gnn");
  if (gnn < 0 || gnn > static_cast<long>(GnnKind::kNone)) {
    throw std::runtime_error("snapshot: " + path + ": unknown gnn kind " +
                             std::to_string(gnn));
  }
  o.gnn = static_cast<GnnKind>(gnn);
  const long embed = read_long(in, path, "embed_dim");
  const long k = read_long(in, path, "k_steps");
  if (embed < 1 || embed > 4096 || k < 1 || k > 64) {
    throw std::runtime_error("snapshot: " + path + ": architecture out of range");
  }
  o.embed_dim = static_cast<int>(embed);
  o.k_steps = static_cast<int>(k);
  o.use_gpnet = read_bool(in, path, "use_gpnet");
  o.include_potential = read_bool(in, path, "include_potential");
  o.mask_noop = read_bool(in, path, "mask_noop");
  o.mask_repeat = read_bool(in, path, "mask_repeat");
  o.use_critic = read_bool(in, path, "use_critic");
  expect_field(in, path, "seed");
  in >> o.seed;
  if (!in) throw std::runtime_error("snapshot: " + path + ": malformed seed");

  // Rebuild the architecture, then overwrite its parameters from the
  // payload; a count/shape mismatch (snapshot from a different variant)
  // throws from ParamRegistry::load before the snapshot becomes visible.
  auto agent = std::make_shared<GiPHAgent>(o);
  agent->registry().load(in);

  auto snap = std::make_shared<PolicySnapshot>();
  snap->options = o;
  snap->agent = std::move(agent);
  snap->source = path;
  return snap;
}

bool SnapshotStore::load(const std::string& path, std::string* error) {
  std::shared_ptr<PolicySnapshot> snap;
  try {
    snap = load_policy_snapshot(path);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mu_);
    ++failed_;
    if (error != nullptr) *error = e.what();
    return false;
  }
  install(std::move(snap));
  return true;
}

void SnapshotStore::install(std::shared_ptr<PolicySnapshot> snap) {
  std::lock_guard<std::mutex> lock(mu_);
  snap->version = ++versions_;
  cur_ = std::move(snap);
}

std::shared_ptr<const PolicySnapshot> SnapshotStore::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cur_;
}

std::uint64_t SnapshotStore::swaps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_;
}

std::uint64_t SnapshotStore::failed_loads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

}  // namespace giph::serve
