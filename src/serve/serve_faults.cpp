#include "serve/serve_faults.hpp"

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

namespace giph::serve {

ServeHooks FaultInjector::hooks() {
  ServeHooks h;
  h.on_request_start = [this](int worker, const PlacementRequest& req) {
    on_start(worker, req);
  };
  return h;
}

void FaultInjector::hold_request(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  holds_.insert(id);
}

void FaultInjector::poison_request(const std::string& id, std::string what) {
  std::lock_guard<std::mutex> lock(mu_);
  poisons_[id] = std::move(what);
}

void FaultInjector::release_all() {
  std::lock_guard<std::mutex> lock(mu_);
  holds_.clear();
  cv_.notify_all();
}

int FaultInjector::awaiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return awaiting_;
}

void FaultInjector::wait_for_awaiting(int n) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return awaiting_ >= n; });
}

void FaultInjector::on_start(int worker, const PlacementRequest& req) {
  (void)worker;
  std::unique_lock<std::mutex> lock(mu_);
  const auto poison = poisons_.find(req.id);
  if (poison != poisons_.end()) {
    const std::string what = poison->second;
    lock.unlock();
    throw std::runtime_error(what);
  }
  if (holds_.count(req.id) != 0) {
    ++awaiting_;
    cv_.notify_all();  // wake wait_for_awaiting observers
    cv_.wait(lock, [&] { return holds_.count(req.id) == 0; });
    --awaiting_;
  }
}

void inject_file_fault(const std::string& path, FileFault fault, std::size_t at) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("inject_file_fault: cannot read " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  if (at >= data.size()) {
    throw std::runtime_error("inject_file_fault: offset " + std::to_string(at) +
                             " out of range for " + path + " (" +
                             std::to_string(data.size()) + " bytes)");
  }
  switch (fault) {
    case FileFault::kTruncate:
      data.resize(at);
      break;
    case FileFault::kFlipByte:
      data[at] = static_cast<char>(data[at] ^ 0x01);
      break;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("inject_file_fault: cannot write " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) throw std::runtime_error("inject_file_fault: write failed for " + path);
}

}  // namespace giph::serve
